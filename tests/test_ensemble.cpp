// The ensemble serving layer: the measurement framework units, the
// RunConfig/run() redesign pinned bitwise against the legacy entry points,
// lazy laser-envelope placement, and the tentpole guarantee — an
// EnsembleDriver batch whose ACE builds share packed exchange FFTs is
// BITWISE identical, per trajectory, to N independent serial runs.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/ensemble.hpp"
#include "core/simulation.hpp"
#include "td/observables.hpp"
#include "test_helpers.hpp"

using namespace ptim;

namespace {

core::Simulation& shared_sim() {
  static core::Simulation* sim = [] {
    core::SystemSpec spec;
    spec.ecut = 1.5;  // very small: 8-atom cell must stay test-fast
    spec.temperature_k = 8000.0;
    spec.extra_states_per_atom = 0.5;
    spec.scf.tol_rho = 5e-5;
    spec.scf.max_scf = 120;
    spec.scf.davidson_tol = 1e-6;
    spec.scf.max_outer_ace = 3;
    auto* s = new core::Simulation(spec);
    s->prepare_ground_state();
    return s;
  }();
  return *sim;
}

core::RunConfig ace_config(int steps) {
  core::RunConfig cfg;
  cfg.steps = steps;
  cfg.dt = 1.0;
  cfg.variant = td::PtImVariant::kAce;
  cfg.tol = 1e-7;
  return cfg;
}

bool bitwise_equal(const la::MatC& a, const la::MatC& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(cplx)) == 0;
}

}  // namespace

// --- measurement framework units (no Simulation needed) -------------------

TEST(Measurements, SeriesStatsAndBinning) {
  core::MeasurementSet m;
  m.add("t", [](const core::MeasureContext& c) { return c.time; });
  m.add("step2", [](const core::MeasureContext& c) {
    return static_cast<real_t>(c.step * c.step);
  });
  const std::vector<real_t> rho(4, 0.25);
  for (int k = 0; k < 7; ++k) {
    core::MeasureContext ctx;
    ctx.rho = &rho;
    ctx.time = 1.0 + k;
    ctx.step = k;
    m.record(ctx);
  }
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.has("t"));
  EXPECT_FALSE(m.has("nope"));
  ASSERT_EQ(m.series("t").size(), 7u);
  EXPECT_DOUBLE_EQ(m.series("t")[3], 4.0);

  const core::RunningStats& s = m.stats("t");  // samples 1..7
  EXPECT_EQ(s.count, 7u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
  EXPECT_NEAR(s.variance(), 28.0 / 6.0, 1e-14);  // sum (k-4)^2 = 28, n-1 = 6
  EXPECT_NEAR(s.stddev(), std::sqrt(28.0 / 6.0), 1e-14);

  // 7 samples in 3 bins: 2 + 2 + 3 (remainder folds into the last bin).
  const auto b = m.binned("t", 3);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_DOUBLE_EQ(b[0], 1.5);
  EXPECT_DOUBLE_EQ(b[1], 3.5);
  EXPECT_DOUBLE_EQ(b[2], 6.0);
  // More bins than samples degrades to one sample per bin.
  EXPECT_EQ(m.binned("t", 100).size(), 7u);

  EXPECT_THROW(m.add("t", core::probes::sigma_trace()), Error);
  EXPECT_THROW(m.series("nope"), Error);
}

TEST(Measurements, NeedsPhiIsEnforced) {
  core::MeasurementSet m;
  m.add("norm", [](const core::MeasureContext& c) {
    return std::real((*c.phi)(0, 0));
  }, /*needs_phi=*/true);
  EXPECT_TRUE(m.needs_phi());
  const std::vector<real_t> rho(4, 0.0);
  core::MeasureContext ctx;
  ctx.rho = &rho;
  EXPECT_THROW(m.record(ctx), Error);  // phi not gathered
}

TEST(Measurements, BuiltinProbes) {
  const la::MatC sigma = test::random_occupation_matrix(4, 7);
  std::vector<real_t> rho = {0.5, 1.5, 2.0};
  core::MeasureContext ctx;
  ctx.rho = &rho;
  ctx.sigma = &sigma;
  real_t tr = 0.0;
  for (size_t i = 0; i < 4; ++i) tr += std::real(sigma(i, i));
  EXPECT_DOUBLE_EQ(core::probes::sigma_trace()(ctx), tr);
  EXPECT_DOUBLE_EQ(core::probes::density_sum(0.25)(ctx), 1.0);
}

// --- RunConfig redesign pinned against the legacy entry points ------------

TEST(RunConfig, SerialRunMatchesLegacyStepLoopBitwise) {
  auto& sim = shared_sim();
  const core::RunConfig cfg = ace_config(3);

  // Legacy path: explicit option struct + manual step loop + ad-hoc dipole.
  auto prop = sim.make_ptim(cfg.ptim());
  td::TdState legacy = sim.initial_state();
  std::vector<real_t> legacy_dipole;
  for (int i = 0; i < cfg.steps; ++i) {
    prop->step(legacy);
    legacy_dipole.push_back(sim.dipole_x(legacy));
  }

  // Redesigned path: RunConfig + measurement framework.
  core::MeasurementSet m;
  m.add("dipole_x", sim.dipole_probe({1.0, 0.0, 0.0}));
  const auto r = sim.run(cfg, std::move(m));

  EXPECT_TRUE(bitwise_equal(r.final_state.phi, legacy.phi));
  EXPECT_TRUE(bitwise_equal(r.final_state.sigma, legacy.sigma));
  const auto& d = r.measurements.series("dipole_x");
  ASSERT_EQ(d.size(), legacy_dipole.size());
  for (size_t i = 0; i < d.size(); ++i)
    EXPECT_EQ(d[i], legacy_dipole[i]);  // same arithmetic, exact equality
  ASSERT_EQ(r.steps.size(), 3u);
  EXPECT_TRUE(r.steps.back().converged);
}

TEST(RunConfig, DeprecatedDistributedWrapperMatchesRunBitwise) {
  auto& sim = shared_sim();

  core::Simulation::DistRunOptions old_opt;
  old_opt.nranks = 2;
  old_opt.steps = 2;
  old_opt.ptim = ace_config(2).ptim();
  const auto old_r = sim.propagate_distributed(old_opt);

  core::RunConfig cfg = ace_config(2);
  cfg.nranks = 2;
  core::MeasurementSet m;
  m.add("dipole_x", sim.dipole_probe({1.0, 0.0, 0.0}));
  const auto new_r = sim.run(cfg, std::move(m));

  EXPECT_TRUE(bitwise_equal(new_r.final_state.phi, old_r.final_state.phi));
  EXPECT_TRUE(
      bitwise_equal(new_r.final_state.sigma, old_r.final_state.sigma));
  const auto& d = new_r.measurements.series("dipole_x");
  ASSERT_EQ(d.size(), old_r.dipole.size());
  for (size_t i = 0; i < d.size(); ++i) EXPECT_EQ(d[i], old_r.dipole[i]);
  EXPECT_EQ(new_r.comm.size(), old_r.comm.size());
}

// --- the ensemble tentpole ------------------------------------------------

TEST(Ensemble, BatchedBitwiseEqualsIndependentRuns) {
  auto& sim = shared_sim();
  const core::RunConfig cfg = ace_config(3);
  constexpr int kJobs = 4;

  auto make_jobs = [] {
    std::vector<core::EnsembleJob> jobs;
    for (int i = 0; i < kJobs; ++i) {
      core::EnsembleJob j;
      j.name = "kick" + std::to_string(i);
      j.kick = {1e-3 * (i + 1), 0.0, 0.0};
      jobs.push_back(std::move(j));
    }
    return jobs;
  };

  // N independent runs, each on its own Hamiltonian + propagator — the
  // pre-ensemble workflow the batch must reproduce exactly.
  std::vector<td::TdState> independent;
  for (const auto& job : make_jobs()) {
    auto h = sim.make_rank_hamiltonian();
    h->set_vector_potential(job.kick);
    td::PtImPropagator prop(*h, cfg.ptim(), nullptr);
    td::TdState s = sim.initial_state();
    for (int i = 0; i < cfg.steps; ++i) prop.step(s);
    independent.push_back(std::move(s));
  }

  core::EnsembleDriver ens(sim, cfg);
  core::MeasurementSet proto;
  proto.add("dipole_x", sim.dipole_probe({1.0, 0.0, 0.0}));
  proto.add("sigma_trace", core::probes::sigma_trace());
  ens.set_measurements(std::move(proto));
  for (auto& j : make_jobs()) ens.submit(std::move(j));
  EXPECT_EQ(ens.pending(), static_cast<size_t>(kJobs));
  const auto batched = ens.run_all();  // one packed batch
  EXPECT_EQ(ens.pending(), 0u);

  ASSERT_EQ(batched.size(), static_cast<size_t>(kJobs));
  for (int i = 0; i < kJobs; ++i) {
    EXPECT_TRUE(bitwise_equal(batched[i].final_state.phi,
                              independent[i].phi))
        << "job " << i;
    EXPECT_TRUE(bitwise_equal(batched[i].final_state.sigma,
                              independent[i].sigma))
        << "job " << i;
    EXPECT_EQ(batched[i].steps.size(), 3u);
    EXPECT_EQ(batched[i].measurements.series("dipole_x").size(), 3u);
    EXPECT_NEAR(batched[i].measurements.stats("sigma_trace").mean,
                sim.nelec() / 2.0, 1e-6);
  }
  // Stronger kicks displace more charge; the per-job measurement series
  // must actually differ across the ensemble.
  EXPECT_NE(batched[0].measurements.series("dipole_x").back(),
            batched[3].measurements.series("dipole_x").back());

  // Batch width is a throughput knob, not a numerics knob.
  core::EnsembleDriver ens2(sim, cfg);
  for (auto& j : make_jobs()) ens2.submit(std::move(j));
  const auto paired = ens2.run_all(/*batch_width=*/2);
  ASSERT_EQ(paired.size(), static_cast<size_t>(kJobs));
  for (int i = 0; i < kJobs; ++i)
    EXPECT_TRUE(bitwise_equal(paired[i].final_state.phi,
                              batched[i].final_state.phi))
        << "width=2 job " << i;
}

// --- failure containment: unrun jobs stay recoverable ---------------------

TEST(Ensemble, FailedRunLeavesUnrunJobsSubmitted) {
  auto& sim = shared_sim();
  const core::RunConfig cfg = ace_config(2);

  const auto make_jobs = [] {
    std::vector<core::EnsembleJob> jobs;
    for (int k = 1; k <= 3; ++k) {
      core::EnsembleJob j;
      j.name = "kick_" + std::to_string(k);
      j.kick = {k * 1e-3, 0.0, 0.0};
      jobs.push_back(std::move(j));
    }
    return jobs;
  };

  // A probe with an injected fault: the first sample of the first batch
  // throws, as a solver divergence or I/O error mid-campaign would.
  static bool boom = true;
  boom = true;
  core::MeasurementSet proto;
  proto.add("fuse", [](const core::MeasureContext&) -> real_t {
    if (boom) throw Error("injected probe failure");
    return 0.0;
  });

  core::EnsembleDriver ens(sim, cfg);
  for (auto& j : make_jobs()) ens.submit(std::move(j));
  ens.set_measurements(proto);
  EXPECT_THROW(ens.run_all(/*batch_width=*/1), Error);
  // run_all drains the queue one batch at a time: the failing batch and
  // every batch after it are still submitted, not silently dropped.
  EXPECT_EQ(ens.pending(), 3u);

  // Clear the fault and retry on the SAME driver: all jobs complete and
  // match a clean driver bitwise.
  boom = false;
  const auto retried = ens.run_all(/*batch_width=*/1);
  ASSERT_EQ(retried.size(), 3u);
  EXPECT_EQ(ens.pending(), 0u);

  core::EnsembleDriver clean(sim, cfg);
  for (auto& j : make_jobs()) clean.submit(std::move(j));
  clean.set_measurements(proto);
  const auto ref = clean.run_all(/*batch_width=*/1);
  ASSERT_EQ(ref.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(
        bitwise_equal(retried[i].final_state.phi, ref[i].final_state.phi))
        << "job " << i;
    EXPECT_TRUE(
        bitwise_equal(retried[i].final_state.sigma, ref[i].final_state.sigma))
        << "job " << i;
  }
}

// --- custom measurement sets on the distributed wrapper -------------------

TEST(RunConfig, DistributedCustomMeasurementsOmitDipoleGracefully) {
  auto& sim = shared_sim();
  core::Simulation::DistRunOptions opt;
  opt.nranks = 2;
  opt.steps = 2;
  opt.ptim.dt = 1.0;
  opt.ptim.tol = 1e-7;
  opt.ptim.variant = td::PtImVariant::kAce;

  // A custom set WITHOUT the dipole probe: result.dipole stays empty (the
  // old unconditional series("dipole_x") lookup threw for such callers) and
  // the sampled series come back through result.measurements.
  core::MeasurementSet m;
  m.add("sigma_trace", core::probes::sigma_trace());
  const auto custom = sim.propagate_distributed(opt, std::move(m));
  EXPECT_TRUE(custom.dipole.empty());
  EXPECT_FALSE(custom.measurements.has("dipole_x"));
  ASSERT_EQ(custom.measurements.series("sigma_trace").size(), 2u);

  // The legacy call shape still gets the default dipole series.
  const auto legacy = sim.propagate_distributed(opt);
  ASSERT_EQ(legacy.dipole.size(), 2u);
  EXPECT_EQ(legacy.dipole,
            legacy.measurements.series("dipole_x"));
}

// --- lazy laser-envelope placement (LAST: mutates shared_sim's laser) -----

TEST(LazyLaser, ResolvesAgainstRunHorizonAndMatchesEagerPath) {
  auto& sim = shared_sim();
  const core::RunConfig cfg = ace_config(3);

  td::LaserParams lp;
  lp.e0 = 5e-3;
  lp.wavelength_nm = 380.0;

  // Eager legacy attach: envelope placed NOW against an explicit t_max.
  sim.set_laser(lp, cfg.horizon(0.0));
  auto prop = sim.make_ptim(cfg.ptim());
  td::TdState eager = sim.initial_state();
  for (int i = 0; i < cfg.steps; ++i) prop->step(eager);
  const real_t efield_eager = sim.laser()->efield(1.0);

  // Lazy attach: parameters only; run() places the envelope against its
  // own horizon. Same horizon -> bitwise the same trajectory.
  sim.set_laser(lp);
  const auto lazy = sim.run(cfg);
  EXPECT_TRUE(bitwise_equal(lazy.final_state.phi, eager.phi));
  EXPECT_TRUE(bitwise_equal(lazy.final_state.sigma, eager.sigma));
  EXPECT_EQ(sim.laser()->efield(1.0), efield_eager);

  // A longer run re-resolves the SAME pending parameters against its own
  // horizon: the default-centered envelope genuinely moves.
  (void)sim.make_ptim(ace_config(9));  // resolves for a 9-step horizon
  EXPECT_NE(sim.laser()->efield(1.0), efield_eager);

  // An ensemble can mix per-job envelopes off one Simulation: the job
  // carrying the pulse sees a field, the kick-only job does not.
  core::EnsembleDriver ens(sim, cfg);
  core::EnsembleJob pulsed;
  pulsed.name = "pulsed";
  pulsed.laser = lp;
  core::EnsembleJob dark;
  dark.name = "dark";
  dark.kick = {1e-3, 0.0, 0.0};
  ens.submit(std::move(pulsed));
  ens.submit(std::move(dark));
  const auto r = ens.run_all();
  ASSERT_EQ(r.size(), 2u);
  EXPECT_FALSE(bitwise_equal(r[0].final_state.phi, r[1].final_state.phi));
  // The pulsed job reproduces the lazy serial run above (same params, same
  // horizon) even though it ran through the batch machinery.
  EXPECT_TRUE(bitwise_equal(r[0].final_state.phi, lazy.final_state.phi));
}
