// Finite-temperature occupations: chemical-potential bisection against
// analytic solutions, electron-count conservation across a kT sweep, the
// hardened kT -> 0 limit (step occupations, descriptive failure on
// unbracketable counts), entropy sign/limits, and the TdState sigma trace.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "la/matrix.hpp"
#include "occ/fermi.hpp"
#include "td/state.hpp"

using namespace ptim;

TEST(Fermi, TwoLevelAnalytic) {
  // Half filling of a symmetric two-level system puts mu mid-gap:
  // f(e1) + f(e2) = 1 iff mu = (e1 + e2)/2. (At kT << gap the counting
  // function is flat across the whole gap — fermi_dirac saturates beyond
  // |x| > 40 — so the mid-gap value is only identifiable once 40 kT
  // exceeds the half-gap; below that any in-gap mu is equally valid.)
  const std::vector<real_t> eps = {-0.3, 0.5};
  for (const real_t kt : {0.02, 0.1, 1.0}) {
    const real_t mu = occ::find_mu(eps, 2.0, kt);
    EXPECT_NEAR(mu, 0.1, 1e-8) << "kt=" << kt;
    const auto f = occ::occupations(eps, mu, kt);
    EXPECT_NEAR(f[0] + f[1], 1.0, 1e-10);
    // Analytic occupation of the lower level.
    EXPECT_NEAR(f[0], 1.0 / (1.0 + std::exp((-0.3 - 0.1) / kt)), 1e-10);
  }
  // Deep in the clamped regime the located mu still reproduces the
  // electron count exactly (occupations saturate to the step).
  for (const real_t kt : {1e-3, 1e-2}) {
    const auto f = occ::occupations(eps, occ::find_mu(eps, 2.0, kt), kt);
    EXPECT_NEAR(f[0] + f[1], 1.0, 1e-10) << "kt=" << kt;
  }
}

TEST(Fermi, ElectronCountConservedAcrossKtSweep) {
  const std::vector<real_t> eps = {-1.2, -0.7, -0.69, 0.1, 0.4, 0.41, 1.3};
  const real_t nelec = 7.0;  // odd count, fractional occupations
  for (const real_t kt : {1e-4, 1e-3, 1e-2, 0.05, 0.2, 1.0}) {
    const real_t mu = occ::find_mu(eps, nelec, kt);
    const auto f = occ::occupations(eps, mu, kt);
    real_t n = 0.0;
    for (const real_t fi : f) n += 2.0 * fi;
    EXPECT_NEAR(n, nelec, 1e-7) << "kt=" << kt;
  }
}

TEST(Fermi, ZeroTemperatureStepOccupations) {
  const std::vector<real_t> eps = {0.3, -0.5, 0.1, 0.9};  // unsorted input
  const real_t mu = occ::find_mu(eps, 4.0, 0.0);
  // mu lands mid-gap between the 2nd and 3rd sorted eigenvalues.
  EXPECT_GT(mu, 0.1);
  EXPECT_LT(mu, 0.3);
  const auto f = occ::occupations(eps, mu, 0.0);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  EXPECT_DOUBLE_EQ(f[1], 1.0);
  EXPECT_DOUBLE_EQ(f[2], 1.0);
  EXPECT_DOUBLE_EQ(f[3], 0.0);
}

TEST(Fermi, ZeroTemperatureFractionalFilling) {
  // 3 electrons in 2 well-separated levels: one full pair + a half-filled
  // HOMO exactly at mu.
  const std::vector<real_t> eps = {-0.4, 0.2};
  const real_t mu = occ::find_mu(eps, 3.0, 0.0);
  EXPECT_DOUBLE_EQ(mu, 0.2);
  const auto f = occ::occupations(eps, mu, 0.0);
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[1], 0.5);
}

TEST(Fermi, KtToZeroLimitMatchesStep) {
  const std::vector<real_t> eps = {-0.8, -0.2, 0.3, 1.0};
  const auto f0 = occ::occupations(eps, occ::find_mu(eps, 4.0, 0.0), 0.0);
  const real_t kt = 1e-6;
  const auto f = occ::occupations(eps, occ::find_mu(eps, 4.0, kt), kt);
  for (size_t i = 0; i < eps.size(); ++i) EXPECT_NEAR(f[i], f0[i], 1e-9);
}

TEST(Fermi, DegenerateShellAtZeroTemperature) {
  // A degenerate Fermi-level shell IS representable at kT = 0 when the
  // remaining electrons exactly half-fill it (the kT -> 0+ limit of the
  // smeared occupations): mu sits on the shell, members at 0.5 each.
  {
    // Spin-degenerate two-fold HOMO, ordinary even filling.
    const std::vector<real_t> eps = {-0.5, 0.0, 0.0};
    const real_t mu = occ::find_mu(eps, 4.0, 0.0);
    EXPECT_DOUBLE_EQ(mu, 0.0);
    const auto f = occ::occupations(eps, mu, 0.0);
    EXPECT_DOUBLE_EQ(f[0], 1.0);
    EXPECT_DOUBLE_EQ(f[1], 0.5);
    EXPECT_DOUBLE_EQ(f[2], 0.5);
    // ... and it matches the kT -> 0+ limit of the same function.
    const real_t kt = 1e-7;
    const auto fs = occ::occupations(eps, occ::find_mu(eps, 4.0, kt), kt);
    for (size_t i = 0; i < eps.size(); ++i) EXPECT_NEAR(fs[i], f[i], 1e-6);
  }
  {
    // Fully half-filled all-degenerate spectrum.
    const std::vector<real_t> eps = {0.1, 0.1, 0.1, 0.1};
    const real_t mu = occ::find_mu(eps, 4.0, 0.0);
    EXPECT_DOUBLE_EQ(mu, 0.1);
    for (const real_t f : occ::occupations(eps, mu, 0.0))
      EXPECT_DOUBLE_EQ(f, 0.5);
  }
}

TEST(Fermi, DegenerateSpectrumAtZeroTemperatureThrows) {
  // All-equal eigenvalues, 4 of 12 electrons: the only step counts are
  // 0 (all empty), 6 (all at 0.5) or 12 (all full) — 4 is unrepresentable.
  const std::vector<real_t> eps = {0.1, 0.1, 0.1, 0.1, 0.1, 0.1};
  EXPECT_THROW(occ::find_mu(eps, 4.0, 0.0), ptim::Error);
  // With smearing the same spectrum is fine (uniform partial filling).
  const real_t kt = 0.01;
  const real_t mu = occ::find_mu(eps, 4.0, kt);
  const auto f = occ::occupations(eps, mu, kt);
  real_t n = 0.0;
  for (const real_t fi : f) n += 2.0 * fi;
  EXPECT_NEAR(n, 4.0, 1e-7);
  // Analytic: uniform occupation 4/12, mu = e - kT ln(2N/ne - 1).
  EXPECT_NEAR(mu, 0.1 - kt * std::log(12.0 / 4.0 - 1.0), 1e-7);
}

TEST(Fermi, UnrepresentableCountsThrowDescriptively) {
  const std::vector<real_t> eps = {-0.5, 0.5};
  // More electrons than the basis can hold (precondition check).
  EXPECT_THROW(occ::find_mu(eps, 5.0, 0.01), ptim::Error);
  EXPECT_THROW(occ::find_mu(eps, -1.0, 0.01), ptim::Error);
  // kT = 0 fractional fillings other than a clean half-filled shell.
  EXPECT_THROW(occ::find_mu(eps, 2.5, 0.0), ptim::Error);
  try {
    occ::find_mu({0.1, 0.1, 0.1}, 2.0, 0.0);  // shell counts: 0, 3 or 6
    FAIL() << "expected ptim::Error";
  } catch (const ptim::Error& e) {
    EXPECT_NE(std::string(e.what()).find("degenerate"), std::string::npos);
  }
}

TEST(Fermi, FullFillingSaturates) {
  // nelec == 2N never brackets (count(mu) < 2N for all finite mu); the
  // saturated mu must still produce full occupations.
  const std::vector<real_t> eps = {-0.4, 0.0, 0.3};
  const real_t kt = 0.02;
  const real_t mu = occ::find_mu(eps, 6.0, kt);
  const auto f = occ::occupations(eps, mu, kt);
  for (const real_t fi : f) EXPECT_NEAR(fi, 1.0, 1e-9);
}

TEST(Fermi, EntropySignAndLimits) {
  // entropy_term returns -T*S: zero for pure states, strictly negative for
  // fractional occupations, minimized at half filling.
  EXPECT_DOUBLE_EQ(occ::entropy_term({0.0, 1.0, 1.0}, 0.05), 0.0);
  EXPECT_DOUBLE_EQ(occ::entropy_term({0.3, 0.7}, 0.0), 0.0);  // kT = 0
  const real_t kt = 0.05;
  const real_t half = occ::entropy_term({0.5}, kt);
  EXPECT_NEAR(half, -2.0 * kt * std::log(2.0), 1e-12);
  EXPECT_LT(occ::entropy_term({0.3, 0.7}, kt), 0.0);
  // Any other occupation of one state is less negative than half filling.
  EXPECT_GT(occ::entropy_term({0.1}, kt), half);
  // Scales linearly with kT.
  EXPECT_NEAR(occ::entropy_term({0.5}, 2.0 * kt), 2.0 * half, 1e-12);
}

TEST(TdStateOcc, SigmaTraceIsHalfElectronCount) {
  const std::vector<real_t> eps = {-0.9, -0.3, 0.2, 0.8, 1.5};
  const real_t nelec = 6.0, kt = 0.025;  // ~8000 K, the paper's setting
  const real_t mu = occ::find_mu(eps, nelec, kt);
  const auto f = occ::occupations(eps, mu, kt);

  la::MatC phi(12, eps.size());
  for (size_t b = 0; b < eps.size(); ++b) phi(b, b) = cplx(1.0);
  const td::TdState s = td::TdState::from_occupations(phi, f);
  cplx trace(0.0);
  for (size_t i = 0; i < s.sigma.rows(); ++i) trace += s.sigma(i, i);
  EXPECT_NEAR(std::real(trace), 0.5 * nelec, 1e-7);
  EXPECT_NEAR(std::imag(trace), 0.0, 1e-15);
}
