// Density builders (the three equivalent paths), Hartree solver, LDA
// functional values and Fermi-Dirac occupations.

#include <gtest/gtest.h>

#include <cmath>

#include "ham/density.hpp"
#include "la/blas.hpp"
#include "ham/hartree.hpp"
#include "ham/xc_lda.hpp"
#include "la/eig.hpp"
#include "occ/fermi.hpp"
#include "test_helpers.hpp"

using namespace ptim;

namespace {
struct Env {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.den_grid};
};
}  // namespace

TEST(Density, DiagIntegratesToElectronCount) {
  Env e;
  const size_t npw = e.sys.sphere->npw();
  const la::MatC phi = test::random_orbitals(npw, 5, 17);
  const std::vector<real_t> occ{1.0, 1.0, 0.5, 0.25, 0.0};
  const auto rho = ham::density_diag(phi, occ, e.map);
  real_t nelec = 0.0;
  for (const real_t f : occ) nelec += 2.0 * f;
  EXPECT_NEAR(ham::integrate(rho, *e.sys.den_grid), nelec, 1e-9 * nelec);
  for (const real_t r : rho) EXPECT_GE(r, -1e-12);
}

TEST(Density, SigmaPathsAgree) {
  Env e;
  const size_t npw = e.sys.sphere->npw();
  const size_t nb = 5;
  const la::MatC phi = test::random_orbitals(npw, nb, 23);
  const la::MatC sigma = test::random_occupation_matrix(nb, 29);

  const auto rho_gemm = ham::density_sigma(phi, sigma, e.map);
  const auto rho_naive = ham::density_sigma_naive(phi, sigma, e.map);
  ASSERT_EQ(rho_gemm.size(), rho_naive.size());
  for (size_t i = 0; i < rho_gemm.size(); ++i)
    EXPECT_NEAR(rho_gemm[i], rho_naive[i], 1e-10);

  // Diagonalized path: rho from (phi*Q, diag(D)).
  const auto eig = la::eig_herm(sigma);
  la::MatC rotated(npw, nb);
  la::gemm_nn(phi, eig.V, rotated);
  const auto rho_diag = ham::density_diag(rotated, eig.w, e.map);
  for (size_t i = 0; i < rho_gemm.size(); ++i)
    EXPECT_NEAR(rho_gemm[i], rho_diag[i], 1e-10);
}

TEST(Density, SigmaTraceGivesElectronCount) {
  Env e;
  const size_t npw = e.sys.sphere->npw();
  const size_t nb = 4;
  const la::MatC phi = test::random_orbitals(npw, nb, 31);
  const la::MatC sigma = test::random_occupation_matrix(nb, 37);
  const auto rho = ham::density_sigma(phi, sigma, e.map);
  real_t tr = 0.0;
  for (size_t i = 0; i < nb; ++i) tr += std::real(sigma(i, i));
  EXPECT_NEAR(ham::integrate(rho, *e.sys.den_grid), 2.0 * tr, 1e-8);
}

TEST(Hartree, GaussianChargeAgainstAnalytic) {
  // rho(r) = (a/pi)^{3/2} q e^{-a r^2} (periodic images negligible for a
  // narrow Gaussian in a big box): V(r) = q erf(sqrt(a) r)/r far from wrap.
  const auto lat = grid::Lattice::cubic(14.0);
  const grid::FftGrid g(lat, {36, 36, 36});
  const real_t a = 4.0, q = 2.0;
  const auto c = lat.center();
  std::vector<real_t> rho(g.size());
  const auto& dims = g.dims();
  for (size_t i2 = 0; i2 < dims[2]; ++i2)
    for (size_t i1 = 0; i1 < dims[1]; ++i1)
      for (size_t i0 = 0; i0 < dims[0]; ++i0) {
        const auto r = g.rvec(i0, i1, i2) - c;
        rho[g.linear(i0, i1, i2)] =
            q * std::pow(a / kPi, 1.5) * std::exp(-a * grid::norm2(r));
      }
  const auto h = ham::hartree_potential(rho, g);

  // Near the charge, periodic images and the neutralizing background only
  // perturb at the percent level; compare the potential *difference* of two
  // nearby radii against the isolated-charge erf solution.
  auto v_at = [&](size_t i) { return h.v[g.linear(i, i, i)]; };
  auto r_at = [&](size_t i) {
    const auto r = g.rvec(i, i, i) - c;
    return std::sqrt(grid::norm2(r));
  };
  auto v_exact = [&](real_t r) { return q * std::erf(std::sqrt(a) * r) / r; };
  const real_t dv_num = v_at(20) - v_at(21);
  const real_t dv_ref = v_exact(r_at(20)) - v_exact(r_at(21));
  EXPECT_NEAR(dv_num, dv_ref, 0.03 * std::abs(dv_ref));
  EXPECT_GT(h.energy, 0.0);
}

TEST(Hartree, SingleModeIsExact) {
  // rho(r) = cos(G0.r)  =>  V_H(r) = (4 pi/|G0|^2) cos(G0.r) exactly.
  const auto lat = grid::Lattice::cubic(9.0);
  const grid::FftGrid g(lat, {12, 12, 12});
  const auto g0 = lat.gvec(1, 2, 0);
  std::vector<real_t> rho(g.size());
  const auto& dims = g.dims();
  for (size_t i2 = 0; i2 < dims[2]; ++i2)
    for (size_t i1 = 0; i1 < dims[1]; ++i1)
      for (size_t i0 = 0; i0 < dims[0]; ++i0)
        rho[g.linear(i0, i1, i2)] =
            std::cos(grid::dot(g0, g.rvec(i0, i1, i2)));
  const auto h = ham::hartree_potential(rho, g);
  const real_t factor = kFourPi / grid::norm2(g0);
  for (size_t i = 0; i < g.size(); i += 7)
    EXPECT_NEAR(h.v[i], factor * rho[i], 1e-10);
  // E_H = (1/2) * factor * integral cos^2 = factor * Omega / 4.
  EXPECT_NEAR(h.energy, factor * lat.volume() / 4.0, 1e-8);
}

TEST(Hartree, EnergyQuadraticInCharge) {
  Env e;
  std::vector<real_t> rho(e.sys.den_grid->size(), 0.0);
  // Put a localized blob.
  rho[5] = 1.0;
  rho[6] = 2.0;
  const auto h1 = ham::hartree_potential(rho, *e.sys.den_grid);
  for (auto& v : rho) v *= 3.0;
  const auto h3 = ham::hartree_potential(rho, *e.sys.den_grid);
  EXPECT_NEAR(h3.energy, 9.0 * h1.energy, 1e-9 * std::abs(h3.energy));
}

TEST(XcLda, KnownValues) {
  // rho = 1: rs = (3/4pi)^{1/3} = 0.62035; Slater ex = -0.73856 per
  // electron; PZ81 high-density branch.
  const auto r = ham::lda_pz81(1.0);
  const real_t ex = -0.75 * std::cbrt(3.0 / kPi);
  const real_t rs = std::cbrt(3.0 / (4.0 * kPi));
  const real_t ec = 0.0311 * std::log(rs) - 0.048 + 0.0020 * rs * std::log(rs) -
                    0.0116 * rs;
  EXPECT_NEAR(r.exc_density, ex + ec, 1e-10);
  // vxc < exc/rho for LDA (more negative).
  EXPECT_LT(r.vxc, r.exc_density);
  // Zero density edge.
  const auto z = ham::lda_pz81(0.0);
  EXPECT_EQ(z.exc_density, 0.0);
  EXPECT_EQ(z.vxc, 0.0);
}

TEST(XcLda, VxcIsFunctionalDerivative) {
  // Finite-difference check: vxc = d(rho exc)/d rho.
  for (const real_t rho : {0.01, 0.1, 0.5, 1.0, 3.0}) {
    const real_t h = 1e-6 * rho;
    const auto p = ham::lda_pz81(rho + h);
    const auto m = ham::lda_pz81(rho - h);
    const auto c = ham::lda_pz81(rho);
    EXPECT_NEAR((p.exc_density - m.exc_density) / (2.0 * h), c.vxc,
                1e-5 * std::abs(c.vxc));
  }
}

TEST(Fermi, OccupationsSumAndLimits) {
  const std::vector<real_t> eps{-0.5, -0.3, -0.1, 0.0, 0.2, 0.4};
  const real_t kt = 8000.0 * units::kboltz_ha_per_k;
  const real_t nelec = 6.0;
  const real_t mu = occ::find_mu(eps, nelec, kt);
  const auto f = occ::occupations(eps, mu, kt);
  real_t sum = 0.0;
  for (const real_t v : f) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    sum += 2.0 * v;
  }
  EXPECT_NEAR(sum, nelec, 1e-8);
  // Monotone decreasing with eps.
  for (size_t i = 1; i < f.size(); ++i) EXPECT_LE(f[i], f[i - 1] + 1e-14);
}

TEST(Fermi, ZeroTemperatureIsStep) {
  const std::vector<real_t> eps{-1.0, -0.5, 0.0, 0.5};
  const auto f = occ::occupations(eps, -0.25, 0.0);
  EXPECT_EQ(f[0], 1.0);
  EXPECT_EQ(f[1], 1.0);
  EXPECT_EQ(f[2], 0.0);
  EXPECT_EQ(f[3], 0.0);
}

TEST(Fermi, HighTemperatureSpreads) {
  const std::vector<real_t> eps{-0.1, 0.0, 0.1, 0.2};
  const real_t kt_lo = 300.0 * units::kboltz_ha_per_k;
  const real_t kt_hi = 30000.0 * units::kboltz_ha_per_k;
  const auto f_lo =
      occ::occupations(eps, occ::find_mu(eps, 4.0, kt_lo), kt_lo);
  const auto f_hi =
      occ::occupations(eps, occ::find_mu(eps, 4.0, kt_hi), kt_hi);
  // Higher T pushes occupations toward uniform 0.5.
  EXPECT_GT(f_hi[3], f_lo[3]);
  EXPECT_LT(f_hi[0], f_lo[0]);
}

TEST(Fermi, EntropyNonPositiveTerm) {
  const std::vector<real_t> occ_v{1.0, 0.9, 0.5, 0.1, 0.0};
  const real_t kt = 0.02;
  EXPECT_LE(occ::entropy_term(occ_v, kt), 0.0);
  const std::vector<real_t> pure{1.0, 1.0, 0.0};
  EXPECT_EQ(occ::entropy_term(pure, kt), 0.0);
}
