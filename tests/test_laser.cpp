// Laser pulse edge cases and the time-dependent Hamiltonian plumbing that
// the propagators rely on.

#include <gtest/gtest.h>

#include <cmath>

#include "td/laser.hpp"
#include "test_helpers.hpp"

using namespace ptim;

TEST(LaserPulse, DefaultsCenterTheEnvelope) {
  td::LaserParams p;
  p.e0 = 0.01;
  const real_t t_max = 120.0;
  td::LaserPulse laser(p, t_max);
  EXPECT_NEAR(laser.params().t_center, 0.5 * t_max, 1e-12);
  EXPECT_NEAR(laser.params().t_width, t_max / 6.0, 1e-12);
}

TEST(LaserPulse, ExplicitEnvelopeRespected) {
  td::LaserParams p;
  p.e0 = 0.02;
  p.t_center = 30.0;
  p.t_width = 5.0;
  td::LaserPulse laser(p, 100.0);
  // Envelope maximum near the requested center.
  real_t best_t = 0.0, best = 0.0;
  for (real_t t = 0.0; t < 100.0; t += 0.1) {
    const real_t e = std::abs(laser.efield(t));
    if (e > best) {
      best = e;
      best_t = t;
    }
  }
  EXPECT_NEAR(best_t, 30.0, 6.0);  // within a carrier period of the center
}

TEST(LaserPulse, PolarizationCarriesThrough) {
  td::LaserParams p;
  p.e0 = 0.01;
  p.polarization = {0.0, 1.0, 0.0};
  td::LaserPulse laser(p, 50.0);
  const auto e = laser.efield_vec(25.0);
  EXPECT_EQ(e[0], 0.0);
  EXPECT_EQ(e[2], 0.0);
  const auto a = laser.vector_potential(25.0);
  EXPECT_EQ(a[0], 0.0);
  EXPECT_NE(a[1], 0.0);
}

TEST(LaserPulse, VectorPotentialBeyondTableClamps) {
  td::LaserParams p;
  p.e0 = 0.01;
  td::LaserPulse laser(p, 40.0);
  // After the pulse dies the vector potential must approach a constant:
  // A(t_max) ~ A(t > t_max) (the 3-sigma envelope tail leaves a ~1e-4
  // relative residue, which is physical, not a table artifact).
  const real_t a_end = laser.vector_potential(40.0)[0];
  const real_t a_past = laser.vector_potential(80.0)[0];
  EXPECT_NEAR(a_past, a_end, 1e-3 * std::abs(a_end));
  // And it must be exactly flat once past the table.
  EXPECT_EQ(laser.vector_potential(80.0)[0], laser.vector_potential(120.0)[0]);
}

TEST(LaserPulse, NegativeTimeIsFieldFreeStart) {
  td::LaserParams p;
  p.e0 = 0.01;
  td::LaserPulse laser(p, 40.0);
  EXPECT_EQ(laser.vector_potential(-1.0)[0], 0.0);
}

TEST(LaserPulse, FluenceScalesWithE0) {
  // Integral E^2 dt scales as e0^2 — a sanity check on the envelope math.
  auto fluence = [](real_t e0) {
    td::LaserParams p;
    p.e0 = e0;
    td::LaserPulse laser(p, 60.0);
    real_t acc = 0.0;
    for (real_t t = 0.0; t < 60.0; t += 0.01)
      acc += laser.efield(t) * laser.efield(t) * 0.01;
    return acc;
  };
  EXPECT_NEAR(fluence(0.02) / fluence(0.01), 4.0, 1e-6);
}

TEST(LaserPulse, WavelengthSetsCarrierPeriod) {
  td::LaserParams p;
  p.e0 = 0.01;
  p.t_width = 1e6;  // effectively flat envelope
  p.t_center = 0.0;
  td::LaserPulse laser(p, 300.0);
  // Count zero crossings of E(t) over a window: ~ 2 per period.
  const real_t period = kTwoPi / laser.omega();
  int crossings = 0;
  real_t prev = laser.efield(10.0);
  for (real_t t = 10.0; t < 10.0 + 5.0 * period; t += period / 400.0) {
    const real_t cur = laser.efield(t);
    if (prev * cur < 0.0) ++crossings;
    prev = cur;
  }
  EXPECT_NEAR(crossings, 10, 1);
}
