// The Fock exchange operator and ACE: the paper's central numerical claims.
//  * the sigma-diagonalization path is exactly equivalent to the naive
//    Alg. 2 triple loop (Sec. IV-A1),
//  * the operator is Hermitian and negative semidefinite,
//  * FFT counts drop from O(N^3) to O(N^2) under diagonalization,
//  * ACE reproduces Vx on the constructing orbitals (Lin 2016).

#include <gtest/gtest.h>

#include <cmath>

#include "ham/ace.hpp"
#include "ham/exchange.hpp"
#include "la/blas.hpp"
#include "la/eig.hpp"
#include "la/util.hpp"
#include "test_helpers.hpp"

using namespace ptim;

namespace {
struct Env {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  ham::ExchangeOperator xop{map, {}};
};
}  // namespace

TEST(ExchangeKernel, ScreenedLimits) {
  Env e;
  const auto& k = e.xop.kernel();
  const real_t mu = e.xop.options().mu;
  // G=0 is the finite HSE value pi/mu^2.
  // Find the G=0 grid point (linear index 0 is (0,0,0)).
  EXPECT_NEAR(k[0], kPi / (mu * mu), 1e-10);
  for (const real_t v : k) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, kPi / (mu * mu) * (1.0 + 1e-12));
  }
}

TEST(ExchangeKernel, BareCoulombMode) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  ham::ExchangeOptions opt;
  opt.screened = false;
  ham::ExchangeOperator xop(map, opt);
  // Away from G=0 the kernel is 4 pi/G^2.
  const auto& g2 = sys.wfc_grid->g2();
  for (size_t i = 1; i < g2.size(); i += 37) {
    if (g2[i] > 1e-8) {
      EXPECT_NEAR(xop.kernel()[i], kFourPi / g2[i], 1e-10);
    }
  }
}

TEST(Exchange, MixedNaiveEqualsMixedDiag) {
  Env e;
  const size_t npw = e.sys.sphere->npw();
  const size_t nb = 4;
  const la::MatC phi = test::random_orbitals(npw, nb, 71);
  const la::MatC sigma = test::random_occupation_matrix(nb, 72);
  const la::MatC tgt = test::random_orbitals(npw, 3, 73);

  la::MatC out_naive(npw, 3), out_diag(npw, 3);
  e.xop.apply_mixed_naive(phi, sigma, tgt, out_naive);
  e.xop.apply_mixed_diag(phi, sigma, tgt, out_diag);
  EXPECT_LT(la::frob_diff(out_naive, out_diag),
            1e-11 * std::max(la::frob_norm(out_naive), 1.0));
}

TEST(Exchange, DiagonalSigmaReducesToPureStates) {
  Env e;
  const size_t npw = e.sys.sphere->npw();
  const size_t nb = 4;
  const la::MatC phi = test::random_orbitals(npw, nb, 74);
  const std::vector<real_t> d{1.0, 0.8, 0.3, 0.05};
  la::MatC sigma(nb, nb);
  for (size_t i = 0; i < nb; ++i) sigma(i, i) = d[i];

  la::MatC out_a(npw, nb), out_b(npw, nb);
  e.xop.apply_diag(phi, d, phi, out_a);
  e.xop.apply_mixed_naive(phi, sigma, phi, out_b);
  EXPECT_LT(la::frob_diff(out_a, out_b), 1e-11);
}

TEST(Exchange, OperatorIsHermitian) {
  Env e;
  const size_t npw = e.sys.sphere->npw();
  const la::MatC src = test::random_orbitals(npw, 3, 75);
  const std::vector<real_t> d{1.0, 0.6, 0.2};
  const la::MatC probes = test::random_orbitals(npw, 4, 76);
  la::MatC vp(npw, 4);
  e.xop.apply_diag(src, d, probes, vp);
  const la::MatC m = pw::overlap(probes, vp);
  EXPECT_LT(la::hermiticity_defect(m), 1e-11);
}

TEST(Exchange, NegativeSemidefinite) {
  Env e;
  const size_t npw = e.sys.sphere->npw();
  const la::MatC src = test::random_orbitals(npw, 3, 77);
  const std::vector<real_t> d{1.0, 0.5, 0.25};
  const la::MatC probes = test::random_orbitals(npw, 5, 78);
  la::MatC vp(npw, 5);
  e.xop.apply_diag(src, d, probes, vp);
  for (size_t j = 0; j < 5; ++j) {
    const cplx q = la::dotc(npw, probes.col(j), vp.col(j));
    EXPECT_LE(std::real(q), 1e-12);
    EXPECT_NEAR(std::imag(q), 0.0, 1e-12);
  }
}

TEST(Exchange, AccumulateFlag) {
  Env e;
  const size_t npw = e.sys.sphere->npw();
  const la::MatC src = test::random_orbitals(npw, 2, 79);
  const std::vector<real_t> d{1.0, 1.0};
  const la::MatC tgt = test::random_orbitals(npw, 2, 80);
  la::MatC base = test::random_matrix(npw, 2, 81);
  la::MatC acc = base;
  e.xop.apply_diag(src, d, tgt, acc, /*accumulate=*/true);
  la::MatC fresh(npw, 2);
  e.xop.apply_diag(src, d, tgt, fresh, false);
  for (size_t i = 0; i < acc.size(); ++i)
    EXPECT_NEAR(std::abs(acc.data()[i] - (base.data()[i] + fresh.data()[i])),
                0.0, 1e-12);
}

TEST(Exchange, FftCountComplexity) {
  // Diag path: 2*N_src*N_tgt transforms; naive mixed path: 2*N^2*N_tgt
  // (the paper's N^3 with N_tgt = N). This is the measured complexity claim.
  Env e;
  const size_t npw = e.sys.sphere->npw();
  const size_t nb = 4;
  const la::MatC phi = test::random_orbitals(npw, nb, 82);
  const la::MatC sigma = test::random_occupation_matrix(nb, 83);

  la::MatC out(npw, nb);
  e.xop.fft_count = 0;
  e.xop.apply_diag(phi, std::vector<real_t>(nb, 0.5), phi, out);
  EXPECT_EQ(e.xop.fft_count, static_cast<long>(2 * nb * nb));

  e.xop.fft_count = 0;
  e.xop.apply_mixed_naive(phi, sigma, phi, out);
  EXPECT_EQ(e.xop.fft_count, static_cast<long>(2 * nb * nb * nb));
}

TEST(Exchange, EnergyNegativeAndConsistent) {
  Env e;
  const size_t npw = e.sys.sphere->npw();
  const size_t nb = 3;
  const la::MatC phi = test::random_orbitals(npw, nb, 84);
  const std::vector<real_t> d{1.0, 0.7, 0.4};
  const real_t ex = e.xop.energy_diag(phi, d);
  EXPECT_LT(ex, 0.0);

  // energy_mixed with the equivalent diagonal sigma agrees.
  la::MatC sigma(nb, nb);
  for (size_t i = 0; i < nb; ++i) sigma(i, i) = d[i];
  EXPECT_NEAR(e.xop.energy_mixed(phi, sigma), ex, 1e-10 * std::abs(ex));
}

TEST(Exchange, ZeroOccupationsShortCircuit) {
  Env e;
  const size_t npw = e.sys.sphere->npw();
  const la::MatC phi = test::random_orbitals(npw, 3, 85);
  la::MatC out(npw, 3);
  e.xop.fft_count = 0;
  e.xop.apply_diag(phi, {0.0, 0.0, 0.0}, phi, out);
  EXPECT_EQ(e.xop.fft_count, 0);
  EXPECT_LT(la::frob_norm(out), 1e-14);
}

// ----------------------------------------------------- batched exchange ---

TEST(ExchangeBatch, BatchedDiagMatchesPerPair) {
  // The acceptance bar for the batched engine: blocks of >= 8 sources
  // through the batched FFT agree with the per-pair path to 1e-10.
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  ham::ExchangeOptions single_opt, batched_opt;
  single_opt.batch_size = 1;
  batched_opt.batch_size = 8;
  ham::ExchangeOperator xop_single(map, single_opt);
  ham::ExchangeOperator xop_batched(map, batched_opt);

  const size_t npw = sys.sphere->npw();
  const size_t nb = 10;  // forces a full block of 8 plus a partial block
  const la::MatC phi = test::random_orbitals(npw, nb, 611);
  std::vector<real_t> d(nb);
  for (size_t i = 0; i < nb; ++i) d[i] = 1.0 - 0.08 * static_cast<real_t>(i);
  const la::MatC tgt = test::random_orbitals(npw, 5, 612);

  la::MatC out_single(npw, 5), out_batched(npw, 5);
  xop_single.apply_diag(phi, d, tgt, out_single);
  xop_batched.apply_diag(phi, d, tgt, out_batched);

  real_t max_abs = 0.0;
  for (size_t i = 0; i < out_single.size(); ++i)
    max_abs = std::max(
        max_abs, std::abs(out_single.data()[i] - out_batched.data()[i]));
  EXPECT_LE(max_abs, 1e-10);
  // Identical transform counts: batching changes grouping, not complexity.
  EXPECT_EQ(xop_single.fft_count, xop_batched.fft_count);
}

TEST(ExchangeBatch, BatchedNaiveMatchesPerPair) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  ham::ExchangeOptions single_opt, batched_opt;
  single_opt.batch_size = 1;
  batched_opt.batch_size = 8;
  ham::ExchangeOperator xop_single(map, single_opt);
  ham::ExchangeOperator xop_batched(map, batched_opt);

  const size_t npw = sys.sphere->npw();
  const size_t nb = 5;
  const la::MatC phi = test::random_orbitals(npw, nb, 621);
  const la::MatC sigma = test::random_occupation_matrix(nb, 622);
  const la::MatC tgt = test::random_orbitals(npw, 3, 623);

  la::MatC out_single(npw, 3), out_batched(npw, 3);
  xop_single.apply_mixed_naive(phi, sigma, tgt, out_single);
  xop_batched.apply_mixed_naive(phi, sigma, tgt, out_batched);

  real_t max_abs = 0.0;
  for (size_t i = 0; i < out_single.size(); ++i)
    max_abs = std::max(
        max_abs, std::abs(out_single.data()[i] - out_batched.data()[i]));
  EXPECT_LE(max_abs, 1e-10);
  EXPECT_EQ(xop_single.fft_count, xop_batched.fft_count);
}

TEST(ExchangeBatch, OddBatchSizesAgree) {
  // Partial trailing blocks for every block width.
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const size_t npw = sys.sphere->npw();
  const size_t nb = 7;
  const la::MatC phi = test::random_orbitals(npw, nb, 631);
  std::vector<real_t> d(nb, 0.5);
  d[2] = 0.0;  // exercise occupation compression inside a block
  const la::MatC tgt = test::random_orbitals(npw, 2, 632);

  ham::ExchangeOptions ref_opt;
  ref_opt.batch_size = 1;
  ham::ExchangeOperator ref_op(map, ref_opt);
  la::MatC ref(npw, 2);
  ref_op.apply_diag(phi, d, tgt, ref);

  for (const size_t bs : {size_t(2), size_t(3), size_t(8), size_t(16)}) {
    ham::ExchangeOptions opt;
    opt.batch_size = bs;
    ham::ExchangeOperator xop(map, opt);
    la::MatC out(npw, 2);
    xop.apply_diag(phi, d, tgt, out);
    real_t max_abs = 0.0;
    for (size_t i = 0; i < out.size(); ++i)
      max_abs = std::max(max_abs, std::abs(out.data()[i] - ref.data()[i]));
    EXPECT_LE(max_abs, 1e-10) << "batch_size=" << bs;
    EXPECT_EQ(xop.fft_count, static_cast<long>(2 * (nb - 1) * 2))
        << "batch_size=" << bs;
  }
}

// --------------------------------------------------- Γ-point fast path ----

TEST(ExchangeGamma, MatchesComplexWithHalvedFftCount) {
  // Real orbitals: the packed real-pair pipeline agrees with the complex
  // one to rounding and performs HALF the pair transforms per target —
  // 2*ceil(nb/2) instead of 2*nb (odd nb exercises the zero-padded lane).
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const size_t npw = sys.sphere->npw();
  const size_t nb = 5;  // odd
  const la::MatC phi = test::random_real_orbitals(map, nb, 801);
  const la::MatC tgt = test::random_real_orbitals(map, 3, 802);
  const std::vector<real_t> d{1.0, 0.8, 0.5, 0.3, 0.1};

  ham::ExchangeOperator xc(map, {});
  la::MatC out_c(npw, 3);
  xc.fft_count = 0;
  xc.apply_diag(phi, d, tgt, out_c);
  EXPECT_EQ(xc.fft_count, static_cast<long>(2 * nb * 3));

  ham::ExchangeOptions go;
  go.gamma_real = true;
  ham::ExchangeOperator xg(map, go);
  la::MatC out_g(npw, 3);
  xg.fft_count = 0;
  xg.apply_diag(phi, d, tgt, out_g);
  EXPECT_EQ(xg.fft_count, static_cast<long>(2 * ((nb + 1) / 2) * 3));

  EXPECT_LT(la::frob_diff(out_c, out_g), 1e-12 * la::frob_norm(out_c));
}

TEST(ExchangeGamma, BitwiseInvariantAcrossBatchSizes) {
  // Block boundaries sit at even density offsets, so lane pairing and the
  // in-order FP64 accumulation never depend on the block width.
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const size_t npw = sys.sphere->npw();
  const size_t nb = 7;
  const la::MatC phi = test::random_real_orbitals(map, nb, 803);
  const la::MatC tgt = test::random_real_orbitals(map, 2, 804);
  std::vector<real_t> d(nb, 0.5);
  d[2] = 0.0;  // occupation compression inside a block

  la::MatC ref;
  for (const size_t bs : {size_t(1), size_t(2), size_t(3), size_t(8),
                          size_t(16)}) {
    ham::ExchangeOptions opt;
    opt.gamma_real = true;
    opt.batch_size = bs;
    ham::ExchangeOperator xop(map, opt);
    la::MatC out(npw, 2);
    xop.fft_count = 0;
    xop.apply_diag(phi, d, tgt, out);
    // 6 active densities -> 3 packed lanes per target at every width.
    EXPECT_EQ(xop.fft_count, static_cast<long>(2 * 3 * 2))
        << "batch_size=" << bs;
    if (ref.size() == 0) {
      ref = out;
    } else {
      EXPECT_EQ(la::frob_diff(out, ref), 0.0) << "batch_size=" << bs;
    }
  }
}

TEST(ExchangeGamma, ComplexOrbitalsFallBackBitwise) {
  // The gate transforms/inspects but must not change a single bit when the
  // fields are genuinely complex.
  Env e;
  const size_t npw = e.sys.sphere->npw();
  const size_t nb = 4;
  const la::MatC phi = test::random_orbitals(npw, nb, 805);
  const la::MatC tgt = test::random_orbitals(npw, 2, 806);
  const std::vector<real_t> d{1.0, 0.7, 0.4, 0.1};

  la::MatC out_off(npw, 2), out_on(npw, 2);
  e.xop.apply_diag(phi, d, tgt, out_off);
  ham::ExchangeOptions go;
  go.gamma_real = true;
  ham::ExchangeOperator xg(e.map, go);
  xg.apply_diag(phi, d, tgt, out_on);
  EXPECT_EQ(la::frob_diff(out_off, out_on), 0.0);

  // Real sources but complex targets must also fall back bitwise.
  const la::MatC rphi = test::random_real_orbitals(e.map, nb, 807);
  la::MatC a(npw, 2), b(npw, 2);
  e.xop.apply_diag(rphi, d, tgt, a);
  xg.apply_diag(rphi, d, tgt, b);
  EXPECT_EQ(la::frob_diff(a, b), 0.0);
}

TEST(ExchangeGamma, ComposesWithFp32Precision) {
  // The FP32 pipeline takes the same packed real path: halved transform
  // count, FP32-level agreement with the FP64 gamma apply, and the
  // compensated policy stays within the plain-single envelope.
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const size_t npw = sys.sphere->npw();
  const size_t nb = 4;
  const la::MatC phi = test::random_real_orbitals(map, nb, 808);
  const la::MatC tgt = test::random_real_orbitals(map, 2, 809);
  const std::vector<real_t> d{1.0, 0.8, 0.5, 0.2};

  ham::ExchangeOptions go;
  go.gamma_real = true;
  ham::ExchangeOperator xg(map, go);
  la::MatC ref(npw, 2);
  xg.apply_diag(phi, d, tgt, ref);

  for (const auto prec :
       {Precision::kSingle, Precision::kSingleCompensated}) {
    ham::ExchangeOptions opt = go;
    opt.precision = prec;
    ham::ExchangeOperator xf(map, opt);
    la::MatC out(npw, 2);
    xf.fft_count = 0;
    xf.apply_diag(phi, d, tgt, out);
    EXPECT_EQ(xf.fft_count, static_cast<long>(2 * ((nb + 1) / 2) * 2));
    EXPECT_LT(la::frob_diff(out, ref), 1e-5 * la::frob_norm(ref));
  }
}

TEST(ExchangeGamma, IsdfCompressionUnaffectedByFlag) {
  // ISDF short-circuits before the gamma gate: enabling the flag must not
  // change a compressed apply by a single bit.
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const size_t npw = sys.sphere->npw();
  const size_t nb = 4;
  const la::MatC phi = test::random_real_orbitals(map, nb, 810);
  const la::MatC tgt = test::random_real_orbitals(map, 2, 811);
  const std::vector<real_t> d{1.0, 0.8, 0.5, 0.2};

  ham::ExchangeOptions base;
  base.compression = ham::ExchangeCompression::kIsdf;
  ham::ExchangeOperator xi(map, base);
  la::MatC out_i(npw, 2);
  xi.apply_diag(phi, d, tgt, out_i);

  ham::ExchangeOptions gopt = base;
  gopt.gamma_real = true;
  ham::ExchangeOperator xgi(map, gopt);
  la::MatC out_gi(npw, 2);
  xgi.apply_diag(phi, d, tgt, out_gi);
  EXPECT_EQ(la::frob_diff(out_i, out_gi), 0.0);
}

TEST(ExchangeGamma, MixedDiagInheritsGate) {
  // apply_mixed_diag rotates sources with complex eigenvector weights, so
  // even real orbitals generally leave the rotation complex — the gate
  // must keep the result identical to gamma off. (A real sigma with real
  // orbitals CAN stay real; either way the numbers must match.)
  Env e;
  const size_t npw = e.sys.sphere->npw();
  const size_t nb = 4;
  const la::MatC phi = test::random_real_orbitals(e.map, nb, 812);
  const la::MatC sigma = test::random_occupation_matrix(nb, 813);
  const la::MatC tgt = test::random_real_orbitals(e.map, 2, 814);

  la::MatC out_off(npw, 2), out_on(npw, 2);
  e.xop.apply_mixed_diag(phi, sigma, tgt, out_off);
  ham::ExchangeOptions go;
  go.gamma_real = true;
  ham::ExchangeOperator xg(e.map, go);
  xg.apply_mixed_diag(phi, sigma, tgt, out_on);
  EXPECT_LT(la::frob_diff(out_off, out_on),
            1e-11 * std::max(la::frob_norm(out_off), 1.0));
}

// ---------------------------------------------------------------- ACE ----

TEST(Ace, ExactOnConstructingOrbitals) {
  Env e;
  const size_t npw = e.sys.sphere->npw();
  const size_t nb = 4;
  const la::MatC phi = test::random_orbitals(npw, nb, 91);
  const std::vector<real_t> d{1.0, 0.8, 0.5, 0.2};
  la::MatC w(npw, nb);
  e.xop.apply_diag(phi, d, phi, w);

  const auto ace = ham::AceOperator::build(phi, w);
  EXPECT_EQ(ace.rank(), nb);
  la::MatC out(npw, nb);
  ace.apply(phi, out);
  EXPECT_LT(la::frob_diff(out, w), 1e-8 * std::max(la::frob_norm(w), 1.0));
}

TEST(Ace, HermitianNegativeSemidefinite) {
  Env e;
  const size_t npw = e.sys.sphere->npw();
  const la::MatC phi = test::random_orbitals(npw, 3, 92);
  const std::vector<real_t> d{1.0, 0.6, 0.3};
  la::MatC w(npw, 3);
  e.xop.apply_diag(phi, d, phi, w);
  const auto ace = ham::AceOperator::build(phi, w);

  const la::MatC probes = test::random_orbitals(npw, 5, 93);
  la::MatC vp(npw, 5);
  ace.apply(probes, vp);
  const la::MatC m = pw::overlap(probes, vp);
  EXPECT_LT(la::hermiticity_defect(m), 1e-11);
  for (size_t j = 0; j < 5; ++j) EXPECT_LE(std::real(m(j, j)), 1e-12);
}

TEST(Ace, EnergyMatchesExactOnSource) {
  Env e;
  const size_t npw = e.sys.sphere->npw();
  const size_t nb = 3;
  const la::MatC phi = test::random_orbitals(npw, nb, 94);
  const std::vector<real_t> d{0.9, 0.5, 0.1};
  la::MatC w(npw, nb);
  e.xop.apply_diag(phi, d, phi, w);
  const auto ace = ham::AceOperator::build(phi, w);

  const real_t e_exact = e.xop.energy_diag(phi, d);
  const real_t e_ace = ace.energy(phi, d);
  EXPECT_NEAR(e_ace, e_exact, 1e-8 * std::abs(e_exact));
}

TEST(Ace, GoodApproximationNearSourceSpace) {
  // A slightly perturbed orbital should still see nearly the exact Vx —
  // the property the PT-IM-ACE inner loop relies on.
  Env e;
  const size_t npw = e.sys.sphere->npw();
  const size_t nb = 4;
  const la::MatC phi = test::random_orbitals(npw, nb, 95);
  const std::vector<real_t> d{1.0, 0.8, 0.4, 0.2};
  la::MatC w(npw, nb);
  e.xop.apply_diag(phi, d, phi, w);
  const auto ace = ham::AceOperator::build(phi, w);

  la::MatC tgt = phi;
  const la::MatC noise = test::random_matrix(npw, nb, 96);
  for (size_t i = 0; i < tgt.size(); ++i)
    tgt.data()[i] += 0.01 * noise.data()[i];

  la::MatC exact(npw, nb), approx(npw, nb);
  e.xop.apply_diag(phi, d, tgt, exact);
  ace.apply(tgt, approx);
  EXPECT_LT(la::frob_diff(exact, approx), 0.05 * la::frob_norm(exact));
}
