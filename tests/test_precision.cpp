// The precision-policy layer: FP32 exact-exchange pipeline vs the FP64
// reference, end to end —
//  * apply_diag / apply_mixed_diag / apply_mixed_naive agree to 1e-6
//    relative (the paper-class bound: FP32 exchange error is far below the
//    PT-IM integrator tolerance),
//  * the Kahan-compensated mode is at least as accurate,
//  * FFT counts are identical in every mode (precision changes the scalar
//    type, not the algorithm),
//  * the FP32 sphere<->grid transforms round-trip at float accuracy,
//  * Bluestein-sized (non-{2,3,5,7}) grids work through the batched
//    exchange path in both precisions,
//  * the distributed ring moves exactly half the bytes under FP32 and
//    reproduces the serial result in either precision,
//  * a 10-step PT-IM-ACE trajectory with FP32 exchange tracks the FP64
//    trajectory to 1e-8 in total energy.

#include <gtest/gtest.h>

#include <cmath>

#include "dist/exchange_dist.hpp"
#include "dist/rotate.hpp"
#include "gs/scf.hpp"
#include "ham/ace.hpp"
#include "ham/density.hpp"
#include "ham/exchange.hpp"
#include "la/blas.hpp"
#include "ptmpi/comm.hpp"
#include "td/ptim.hpp"
#include "test_helpers.hpp"

using namespace ptim;

namespace {

real_t max_abs_diff(const la::MatC& a, const la::MatC& b) {
  real_t m = 0.0;
  for (size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  return m;
}

ham::ExchangeOperator make_xop(const pw::SphereGridMap& map, Precision p,
                               size_t batch_size = 8) {
  ham::ExchangeOptions opt;
  opt.batch_size = batch_size;
  opt.precision = p;
  return ham::ExchangeOperator(map, opt);
}

}  // namespace

// ------------------------------------------------- serial exchange ------

TEST(PrecisionExchange, ApplyDiagSingleMatchesDouble) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const size_t npw = sys.sphere->npw();
  const size_t nb = 6;
  const la::MatC phi = test::random_orbitals(npw, nb, 901);
  std::vector<real_t> d(nb);
  for (size_t i = 0; i < nb; ++i) d[i] = 1.0 - 0.12 * static_cast<real_t>(i);
  const la::MatC tgt = test::random_orbitals(npw, 4, 902);

  const auto x64 = make_xop(map, Precision::kDouble);
  la::MatC ref(npw, 4);
  x64.apply_diag(phi, d, tgt, ref);
  const real_t scale = std::max(la::frob_norm(ref), real_t(1.0));

  for (const Precision p :
       {Precision::kSingle, Precision::kSingleCompensated}) {
    const auto x32 = make_xop(map, p);
    la::MatC out(npw, 4);
    x32.apply_diag(phi, d, tgt, out);
    EXPECT_LE(la::frob_diff(out, ref), 1e-6 * scale)
        << "precision=" << precision_name(p);
  }
}

TEST(PrecisionExchange, ApplyMixedDiagWithinRelativeBound) {
  // The acceptance bar: FP32 agrees with FP64 to <= 1e-6 relative on
  // apply_mixed_diag outputs.
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const size_t npw = sys.sphere->npw();
  const size_t nb = 5;
  const la::MatC phi = test::random_orbitals(npw, nb, 903);
  const la::MatC sigma = test::random_occupation_matrix(nb, 904);
  const la::MatC tgt = test::random_orbitals(npw, 3, 905);

  const auto x64 = make_xop(map, Precision::kDouble);
  la::MatC ref(npw, 3);
  x64.apply_mixed_diag(phi, sigma, tgt, ref);
  const real_t scale = std::max(la::frob_norm(ref), real_t(1.0));

  for (const Precision p :
       {Precision::kSingle, Precision::kSingleCompensated}) {
    const auto x32 = make_xop(map, p);
    la::MatC out(npw, 3);
    x32.apply_mixed_diag(phi, sigma, tgt, out);
    EXPECT_LE(la::frob_diff(out, ref), 1e-6 * scale)
        << "precision=" << precision_name(p);
  }
}

TEST(PrecisionExchange, ApplyMixedNaiveMatchesDouble) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const size_t npw = sys.sphere->npw();
  const size_t nb = 4;
  const la::MatC phi = test::random_orbitals(npw, nb, 906);
  const la::MatC sigma = test::random_occupation_matrix(nb, 907);
  const la::MatC tgt = test::random_orbitals(npw, 2, 908);

  const auto x64 = make_xop(map, Precision::kDouble);
  la::MatC ref(npw, 2);
  x64.apply_mixed_naive(phi, sigma, tgt, ref);
  const real_t scale = std::max(la::frob_norm(ref), real_t(1.0));

  const auto x32 = make_xop(map, Precision::kSingle);
  la::MatC out(npw, 2);
  x32.apply_mixed_naive(phi, sigma, tgt, out);
  EXPECT_LE(la::frob_diff(out, ref), 1e-6 * scale);
  // The triple-loop transform count is precision-independent.
  EXPECT_EQ(x32.fft_count, x64.fft_count);
}

TEST(PrecisionExchange, CompensatedNoWorseThanPlainSingle) {
  // Kahan compensation can only tighten the FP64 accumulation; with many
  // sources the compensated error must not exceed the plain-single error
  // by more than rounding noise.
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const size_t npw = sys.sphere->npw();
  const size_t nb = 12;
  const la::MatC phi = test::random_orbitals(npw, nb, 909);
  const std::vector<real_t> d(nb, 0.5);
  const la::MatC tgt = test::random_orbitals(npw, 2, 910);

  la::MatC ref(npw, 2), plain(npw, 2), comp(npw, 2);
  make_xop(map, Precision::kDouble).apply_diag(phi, d, tgt, ref);
  make_xop(map, Precision::kSingle).apply_diag(phi, d, tgt, plain);
  make_xop(map, Precision::kSingleCompensated).apply_diag(phi, d, tgt, comp);

  const real_t err_plain = la::frob_diff(plain, ref);
  const real_t err_comp = la::frob_diff(comp, ref);
  EXPECT_LE(err_comp, err_plain * (1.0 + 1e-6) + 1e-12);
}

TEST(PrecisionExchange, FftCountsIdenticalAcrossPrecisions) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const size_t npw = sys.sphere->npw();
  const size_t nb = 5;
  const la::MatC phi = test::random_orbitals(npw, nb, 911);
  const std::vector<real_t> d(nb, 0.5);

  la::MatC out(npw, nb);
  for (const size_t bs : {size_t(1), size_t(3), size_t(8)}) {
    const auto x64 = make_xop(map, Precision::kDouble, bs);
    const auto x32 = make_xop(map, Precision::kSingle, bs);
    x64.apply_diag(phi, d, phi, out);
    x32.apply_diag(phi, d, phi, out);
    EXPECT_EQ(x64.fft_count, static_cast<long>(2 * nb * nb)) << "bs=" << bs;
    EXPECT_EQ(x32.fft_count, x64.fft_count) << "bs=" << bs;
  }
}

TEST(PrecisionExchange, EnergyTracksDouble) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const size_t npw = sys.sphere->npw();
  const size_t nb = 4;
  const la::MatC phi = test::random_orbitals(npw, nb, 912);
  const std::vector<real_t> d{1.0, 0.8, 0.5, 0.2};

  const real_t e64 = make_xop(map, Precision::kDouble).energy_diag(phi, d);
  const real_t e32 = make_xop(map, Precision::kSingle).energy_diag(phi, d);
  EXPECT_LT(e32, 0.0);
  EXPECT_NEAR(e32, e64, 1e-6 * std::abs(e64));
}

// ------------------------------------------- FP32 sphere<->grid maps ----

TEST(PrecisionTransforms, SingleBatchRoundTrip) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const size_t npw = sys.sphere->npw();
  const la::MatC phi = test::random_orbitals(npw, 5, 913);

  la::MatCf real32;
  map.to_real_batch(phi, real32);
  la::MatC back;
  map.to_sphere_batch(real32, back);
  // Band-limited round trip at float accuracy.
  real_t scale = 0.0;
  for (size_t i = 0; i < phi.size(); ++i)
    scale = std::max(scale, std::abs(phi.data()[i]));
  EXPECT_LE(max_abs_diff(back, phi), 5e-6 * std::max(scale, real_t(1.0)));
}

TEST(PrecisionTransforms, SingleMatchesDoubleRealSpace) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const size_t npw = sys.sphere->npw();
  const la::MatC phi = test::random_orbitals(npw, 3, 914);

  la::MatC real64;
  map.to_real_batch(phi, real64);
  la::MatCf real32;
  map.to_real_batch(phi, real32);
  real_t scale = 0.0, err = 0.0;
  for (size_t i = 0; i < real64.size(); ++i) {
    scale = std::max(scale, std::abs(real64.data()[i]));
    err = std::max(err, std::abs(real64.data()[i] -
                                 static_cast<cplx>(real32.data()[i])));
  }
  EXPECT_LE(err, 1e-5 * std::max(scale, real_t(1.0)));
}

// ----------------------------------------------- Bluestein-sized grids --

TEST(PrecisionExchange, BluesteinGridBothPrecisions) {
  // Non-{2,3,5,7} grid dims route every batched pair FFT through the
  // Bluestein chirp-z fallback; the exchange pipeline must work (and the
  // precisions agree) there too.
  const real_t box = 8.0;
  auto lattice = grid::Lattice::cubic(box);
  grid::GSphere sphere(lattice, 2.0);
  // 11 and 13 are prime (Bluestein); 12 is the mixed-radix control.
  grid::FftGrid gridb(lattice, {11, 13, 12});
  pw::SphereGridMap map{sphere, gridb};

  const size_t npw = sphere.npw();
  const la::MatC phi = test::random_orbitals(npw, 4, 915);
  const std::vector<real_t> d{1.0, 0.7, 0.4, 0.1};
  const la::MatC tgt = test::random_orbitals(npw, 2, 916);

  const auto x64 = make_xop(map, Precision::kDouble);
  la::MatC ref(npw, 2);
  x64.apply_diag(phi, d, tgt, ref);
  EXPECT_GT(la::frob_norm(ref), 0.0);

  // Per-pair path agrees with the batched path on the Bluestein grid.
  la::MatC ref_single(npw, 2);
  make_xop(map, Precision::kDouble, 1).apply_diag(phi, d, tgt, ref_single);
  EXPECT_LE(la::frob_diff(ref_single, ref), 1e-10);

  const real_t scale = std::max(la::frob_norm(ref), real_t(1.0));
  for (const Precision p :
       {Precision::kSingle, Precision::kSingleCompensated}) {
    const auto x32 = make_xop(map, p);
    la::MatC out(npw, 2);
    x32.apply_diag(phi, d, tgt, out);
    EXPECT_LE(la::frob_diff(out, ref), 1e-5 * scale)
        << "precision=" << precision_name(p);
  }
}

// ------------------------------------------------- distributed ring -----

TEST(PrecisionDist, RingMovesHalfTheBytes) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const size_t npw = sys.sphere->npw();
  const size_t nb = 6;
  const la::MatC phi = test::random_orbitals(npw, nb, 917);
  std::vector<real_t> d(nb, 0.5);

  auto ring_bytes = [&](Precision p) {
    const auto xop = make_xop(map, p);
    ptmpi::run_ranks(4, 2, [&](ptmpi::Comm& c) {
      (void)dist::exchange_apply_distributed(c, xop, phi, d, phi,
                                             dist::ExchangePattern::kRing);
    });
    long long bytes = 0;
    const auto& st = ptmpi::last_run_stats()[0];
    const auto it = st.ops.find("Sendrecv");
    if (it != st.ops.end()) bytes = it->second.bytes;
    return bytes;
  };

  const long long b64 = ring_bytes(Precision::kDouble);
  const long long b32 = ring_bytes(Precision::kSingle);
  EXPECT_GT(b64, 0);
  // sizeof(cplxf) is exactly half of sizeof(cplx): the FP32 policy halves
  // the circulated payload bit-for-bit.
  EXPECT_EQ(2 * b32, b64);
}

TEST(PrecisionDist, DistributedMatchesSerialBothPrecisions) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const size_t npw = sys.sphere->npw();
  const size_t nb = 5;
  const la::MatC phi = test::random_orbitals(npw, nb, 918);
  std::vector<real_t> d(nb);
  for (size_t i = 0; i < nb; ++i) d[i] = 1.0 - 0.15 * static_cast<real_t>(i);

  for (const Precision p : {Precision::kDouble, Precision::kSingle}) {
    const auto xop = make_xop(map, p);
    la::MatC serial(npw, nb);
    xop.apply_diag(phi, d, phi, serial);

    for (const auto pat :
         {dist::ExchangePattern::kBcast, dist::ExchangePattern::kRing,
          dist::ExchangePattern::kAsyncRing}) {
      la::MatC gathered(npw, nb);
      ptmpi::run_ranks(3, 1, [&](ptmpi::Comm& c) {
        const la::MatC mine =
            dist::exchange_apply_distributed(c, xop, phi, d, phi, pat);
        const dist::BlockLayout tb(nb, c.size());
        // Collect each rank's target block into the shared output.
        for (size_t b = 0; b < tb.count(c.rank()); ++b)
          std::copy(mine.col(b), mine.col(b) + npw,
                    gathered.col(tb.offset(c.rank()) + b));
      });
      // Distributed FP32 differs from serial FP32 only through FP64
      // accumulation order (block partitioning) — far below the FP32 noise.
      EXPECT_LE(la::frob_diff(gathered, serial),
                1e-9 * std::max(la::frob_norm(serial), real_t(1.0)))
          << precision_name(p) << " pattern=" << dist::pattern_name(pat);
    }
  }
}

TEST(PrecisionDist, MixedWeightedMatchesSerialSingle) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const size_t npw = sys.sphere->npw();
  const size_t nb = 4;
  const la::MatC phi = test::random_orbitals(npw, nb, 919);
  const la::MatC sigma = test::random_occupation_matrix(nb, 920);

  const auto xop = make_xop(map, Precision::kSingle);
  la::MatC serial(npw, nb);
  xop.apply_mixed_naive(phi, sigma, phi, serial);

  // theta = Phi * sigma carries the contraction.
  la::MatC theta(npw, nb);
  la::gemm_nn(phi, sigma, theta);

  la::MatC gathered(npw, nb);
  ptmpi::run_ranks(2, 1, [&](ptmpi::Comm& c) {
    const dist::BlockLayout bands(nb, c.size());
    const la::MatC phi_local = dist::scatter_bands(phi, bands, c.rank());
    const la::MatC theta_local = dist::scatter_bands(theta, bands, c.rank());
    const la::MatC mine = dist::exchange_apply_distributed_mixed_local(
        c, xop, phi_local, theta_local, phi_local, bands,
        dist::ExchangePattern::kRing);
    for (size_t b = 0; b < bands.count(c.rank()); ++b)
      std::copy(mine.col(b), mine.col(b) + npw,
                gathered.col(bands.offset(c.rank()) + b));
  });
  EXPECT_LE(la::frob_diff(gathered, serial),
            1e-6 * std::max(la::frob_norm(serial), real_t(1.0)));
}

// ---------------------------------------------- PT-IM-ACE trajectory ----

namespace {

// Shared tiny hybrid finite-T ground state for the trajectory comparison.
struct PrecEnv {
  test::TinySystem sys;
  gs::ScfResult ground;

  PrecEnv() : sys(test::TinySystem::make(3.0)) {
    gs::ScfOptions opt;
    opt.nbands = 6;
    opt.nelec = 8.0;
    opt.temperature_k = 8000.0;
    opt.tol_rho = 1e-7;
    opt.davidson_tol = 1e-8;
    ground = gs::ground_state(*sys.ham, opt);
  }

  static PrecEnv& get() {
    static PrecEnv* env = new PrecEnv();
    return *env;
  }

  real_t energy(const td::TdState& s) const {
    const auto rho = ham::density_sigma(s.phi, s.sigma, sys.ham->den_map());
    sys.ham->set_density(rho);
    return sys.ham->energy(s.phi, s.sigma, rho).total();
  }
};

}  // namespace

TEST(PrecisionTrajectory, PtImAceEnergyTracksDoubleOver10Steps) {
  // The end-to-end acceptance bar: 10 PT-IM-ACE steps with the exchange
  // pipeline in FP32 agree with the all-FP64 trajectory to 1e-8 in total
  // energy at every step. The propagator algebra is FP64 in both runs; only
  // the exchange pair FFTs (inside the ACE build) differ.
  auto& env = PrecEnv::get();
  const int steps = 10;

  auto run = [&](Precision p) {
    td::TdState s = td::TdState::from_occupations(env.ground.phi,
                                                  env.ground.occ);
    td::PtImOptions opt;
    opt.dt = 1.0;
    opt.variant = td::PtImVariant::kAce;
    // Production tolerances: tol_fock must sit above the FP32 noise floor
    // (~1e-7 relative) or the ACE outer loop runs to its cap chasing noise
    // in the FP32 run (see the README's "when to pick each mode").
    opt.tol = 1e-7;
    opt.tol_fock = 1e-6;
    opt.exchange_precision = p;
    td::PtImPropagator prop(*env.sys.ham, opt, nullptr);
    std::vector<real_t> energies;
    for (int i = 0; i < steps; ++i) {
      prop.step(s);
      // Measure both trajectories with the FP64 operator so the comparison
      // isolates trajectory drift from FP32 noise in the energy evaluation
      // itself (which is bounded separately by EnergyTracksDouble).
      env.sys.ham->set_exchange_precision(Precision::kDouble);
      energies.push_back(env.energy(s));
      env.sys.ham->set_exchange_precision(p);
    }
    return energies;
  };

  const auto e64 = run(Precision::kDouble);
  const auto e32 = run(Precision::kSingle);
  env.sys.ham->set_exchange_precision(Precision::kDouble);

  real_t max_de = 0.0;
  for (int i = 0; i < steps; ++i)
    max_de = std::max(max_de, std::abs(e32[static_cast<size_t>(i)] -
                                       e64[static_cast<size_t>(i)]));
  EXPECT_LE(max_de, 1e-8) << "max |dE| over " << steps << " steps";
}
