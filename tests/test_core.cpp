// The public Simulation API, the PT-CN (frozen-sigma) mode, the current
// observable and the memory-footprint model.

#include <gtest/gtest.h>

#include <cmath>

#include "core/simulation.hpp"
#include "gs/scf.hpp"
#include "ham/density.hpp"
#include "netsim/memory.hpp"
#include "pw/wavefunction.hpp"
#include "td/observables.hpp"
#include "test_helpers.hpp"

using namespace ptim;

namespace {

core::Simulation& shared_sim() {
  static core::Simulation* sim = [] {
    core::SystemSpec spec;
    spec.ecut = 1.5;  // very small: 8-atom cell must stay test-fast
    spec.temperature_k = 8000.0;
    spec.extra_states_per_atom = 0.5;
    spec.scf.tol_rho = 5e-5;
    spec.scf.max_scf = 120;
    spec.scf.davidson_tol = 1e-6;
    spec.scf.max_outer_ace = 3;
    auto* s = new core::Simulation(spec);
    s->prepare_ground_state();
    return s;
  }();
  return *sim;
}

}  // namespace

TEST(Simulation, SpecArithmetic) {
  core::SystemSpec spec;
  spec.ecut = 1.5;
  core::Simulation sim(spec);
  EXPECT_EQ(sim.natoms(), 8u);              // one conventional cell
  EXPECT_NEAR(sim.nelec(), 32.0, 1e-12);    // 4 valence e per Si
  EXPECT_EQ(sim.nbands(), 16u + 4u);        // nelec/2 + natoms/2
}

TEST(Simulation, GroundStateProperties) {
  auto& sim = shared_sim();
  const auto& gs = sim.ground_state();
  EXPECT_TRUE(gs.converged);
  EXPECT_LT(pw::orthonormality_defect(gs.phi), 1e-5);
  real_t nelec = 0.0;
  for (const real_t f : gs.occ) nelec += 2.0 * f;
  EXPECT_NEAR(nelec, 32.0, 1e-6);
  // Finite temperature: at least one genuinely fractional occupation.
  bool fractional = false;
  for (const real_t f : gs.occ)
    if (f > 0.02 && f < 0.98) fractional = true;
  EXPECT_TRUE(fractional);
  EXPECT_LT(gs.energy.fock, 0.0);
  EXPECT_LT(gs.energy.total(), 0.0);
}

TEST(Simulation, InitialStateMatchesOccupations) {
  auto& sim = shared_sim();
  const auto s = sim.initial_state();
  EXPECT_EQ(s.nbands(), sim.nbands());
  EXPECT_NEAR(td::sigma_trace(s.sigma), sim.nelec() / 2.0, 1e-8);
  EXPECT_GT(td::sigma_idempotency_defect(s.sigma), 1e-3);  // mixed state
  // Density from the state integrates to the electron count.
  const auto rho = sim.density(s);
  real_t total = 0.0;
  for (const real_t r : rho) total += r;
  total *= sim.hamiltonian().den_grid().dvol();
  EXPECT_NEAR(total, sim.nelec(), 1e-6);
}

TEST(Simulation, EnergyBreakdownFinite) {
  auto& sim = shared_sim();
  const auto e = sim.energy(sim.initial_state());
  for (const real_t v : {e.kinetic, e.local, e.hartree, e.xc, e.fock,
                         e.ewald, e.total()})
    EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(e.kinetic, 0.0);
  EXPECT_LT(e.xc, 0.0);
  EXPECT_LT(e.ewald, 0.0);
}

TEST(Simulation, PropagateOneStepThroughApi) {
  auto& sim = shared_sim();
  td::LaserParams lp;
  lp.e0 = 0.01;
  sim.set_laser(lp, 10.0);
  td::PtImOptions opt;
  opt.dt = 2.0;
  opt.variant = td::PtImVariant::kAce;
  auto prop = sim.make_ptim(opt);
  auto state = sim.initial_state();
  const real_t d0 = sim.dipole_x(state);
  const auto stats = prop->step(state);
  EXPECT_TRUE(stats.converged);
  EXPECT_NEAR(state.time, 2.0, 1e-12);
  EXPECT_TRUE(std::isfinite(sim.dipole_x(state)));
  EXPECT_LT(std::abs(sim.dipole_x(state) - d0), 0.5);  // gentle kick only
}

TEST(PtCn, FrozenSigmaMode) {
  // PT-CN: sigma must not change; Phi still evolves and stays orthonormal.
  auto sys = test::TinySystem::make(3.0);
  gs::ScfOptions scf;
  scf.nbands = 5;
  scf.nelec = 8.0;
  scf.temperature_k = 0.0;  // pure states (PT-CN's domain of validity)
  const auto gs_res = gs::ground_state(*sys.ham, scf);
  auto s = td::TdState::from_occupations(gs_res.phi, gs_res.occ);
  const la::MatC sigma0 = s.sigma;

  td::PtImOptions opt;
  opt.dt = 1.0;
  opt.tol = 1e-8;
  opt.evolve_sigma = false;
  td::PtImPropagator prop(*sys.ham, opt, nullptr);
  const auto stats = prop.step(s);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(pw::orthonormality_defect(s.phi), 1e-10);
  // Final orthonormalization applies a near-identity congruence to sigma;
  // the occupations themselves are untouched by the dynamics.
  for (size_t i = 0; i < sigma0.rows(); ++i)
    EXPECT_NEAR(std::real(s.sigma(i, i)), std::real(sigma0(i, i)), 1e-6);
}

TEST(PtCn, MatchesPtImForPureStatesPhysically) {
  // For a gapped pure-state system both gauges represent the same physics:
  // densities agree after one step even though sigma evolves in one and
  // not the other.
  auto sys = test::TinySystem::make(3.0);
  gs::ScfOptions scf;
  scf.nbands = 5;
  scf.nelec = 8.0;
  scf.temperature_k = 0.0;
  const auto gs_res = gs::ground_state(*sys.ham, scf);

  auto run = [&](bool evolve_sigma) {
    auto s = td::TdState::from_occupations(gs_res.phi, gs_res.occ);
    td::PtImOptions opt;
    opt.dt = 1.0;
    opt.tol = 1e-9;
    opt.evolve_sigma = evolve_sigma;
    td::PtImPropagator prop(*sys.ham, opt, nullptr);
    prop.step(s);
    return ham::density_sigma(s.phi, s.sigma, sys.ham->den_map());
  };
  const auto rho_im = run(true);
  const auto rho_cn = run(false);
  real_t diff = 0.0, norm = 0.0;
  for (size_t i = 0; i < rho_im.size(); ++i) {
    diff += (rho_im[i] - rho_cn[i]) * (rho_im[i] - rho_cn[i]);
    norm += rho_im[i] * rho_im[i];
  }
  EXPECT_LT(std::sqrt(diff / norm), 1e-5);
}

TEST(Observables, CurrentZeroAtGroundState) {
  // Stationary real-occupancy ground state carries no net current; a
  // vector-potential kick produces j ~ -n A / Omega (f-sum rule direction).
  auto sys = test::TinySystem::make(3.0);
  gs::ScfOptions scf;
  scf.nbands = 5;
  scf.nelec = 8.0;
  scf.temperature_k = 1000.0;
  const auto gs_res = gs::ground_state(*sys.ham, scf);
  la::MatC sigma(5, 5);
  for (size_t i = 0; i < 5; ++i) sigma(i, i) = gs_res.occ[i];

  const real_t j0 = td::current(gs_res.phi, sigma, *sys.sphere,
                                {0.0, 0.0, 0.0}, {1.0, 0.0, 0.0});
  EXPECT_NEAR(j0, 0.0, 1e-8);

  const real_t kick = 1e-3;
  const real_t jk = td::current(gs_res.phi, sigma, *sys.sphere,
                                {kick, 0.0, 0.0}, {1.0, 0.0, 0.0});
  // Diamagnetic response: j = 2*sum(occ)*A/Omega exactly in this basis.
  const real_t expect = 2.0 * 4.0 * kick / sys.lattice->volume();
  EXPECT_NEAR(jk, expect, 1e-8);
}

TEST(MemoryModel, ShmDividesSquareMatrices) {
  const auto plat = netsim::Platform::fugaku_arm();
  const auto sys = netsim::SystemSize::silicon(768);
  const auto no_shm = netsim::memory_per_rank(plat, sys, 480, false);
  const auto shm = netsim::memory_per_rank(plat, sys, 480, true);
  EXPECT_NEAR(shm.square_matrices, no_shm.square_matrices / 4.0, 1.0);
  EXPECT_EQ(shm.wavefunctions, no_shm.wavefunctions);
  EXPECT_LT(shm.total(), no_shm.total());
}

TEST(MemoryModel, FugakuCapacityMatchesPaper) {
  // Paper: 1536 atoms fit on 960 Fugaku nodes only thanks to SHM (8 GB per
  // CMG rank); without SHM the replicated N^2 matrices overflow.
  const auto plat = netsim::Platform::fugaku_arm();
  const double budget = 8e9;
  const size_t with_shm = netsim::max_atoms_for_memory(plat, 960, budget, true);
  const size_t without = netsim::max_atoms_for_memory(plat, 960, budget, false);
  EXPECT_GE(with_shm, 1536u);
  EXPECT_GT(with_shm, without);
}

TEST(MemoryModel, GpuCapacityMatchesPaper) {
  // Paper: 3072 atoms consume >80% of the 40 GB A100 memory on 192 nodes
  // (their GPU footprint includes buffers we do not itemize, so we assert
  // a large fraction); 6144 atoms overflow even with twice the nodes.
  const auto plat = netsim::Platform::gpu_a100();
  const auto sys3072 = netsim::SystemSize::silicon(3072);
  const double used =
      netsim::memory_per_rank(plat, sys3072, 192, true).total();
  EXPECT_GT(used, 0.35 * 40e9);
  EXPECT_LT(used, 1.2 * 40e9);
  const auto sys6144 = netsim::SystemSize::silicon(6144);
  const double used6144 =
      netsim::memory_per_rank(plat, sys6144, 384, true).total();
  EXPECT_GT(used6144, 40e9);
}

TEST(MemoryModel, WavefunctionsScaleSquareMatricesDoNot) {
  const auto plat = netsim::Platform::gpu_a100();
  const auto sys = netsim::SystemSize::silicon(1536);
  const auto m96 = netsim::memory_per_rank(plat, sys, 96, false);
  const auto m192 = netsim::memory_per_rank(plat, sys, 192, false);
  EXPECT_LT(m192.wavefunctions, m96.wavefunctions);
  EXPECT_EQ(m192.square_matrices, m96.square_matrices);
}
