// Distributed kernels: block layouts, the Fig. 1 Alltoallv transpose, the
// Fig. 6 SHM overlap reduction, the ring-based wavefunction rotation, the
// distributed Anderson mixer, and — centrally — the equality of the
// Bcast / Ring / Async-Ring exchange patterns (rank-local and legacy
// full-replication APIs) with the serial operator.

#include <gtest/gtest.h>

#include "backend/buffer.hpp"
#include "dist/exchange_dist.hpp"
#include "dist/layout.hpp"
#include "dist/mixer_dist.hpp"
#include "dist/rotate.hpp"
#include "dist/transpose.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/mixer.hpp"
#include "test_helpers.hpp"

using namespace ptim;

TEST(Layout, BlockDecomposition) {
  const dist::BlockLayout lay(10, 4);
  // 10 = 3 + 3 + 2 + 2.
  EXPECT_EQ(lay.count(0), 3u);
  EXPECT_EQ(lay.count(1), 3u);
  EXPECT_EQ(lay.count(2), 2u);
  EXPECT_EQ(lay.count(3), 2u);
  EXPECT_EQ(lay.offset(0), 0u);
  EXPECT_EQ(lay.offset(3), 8u);
  EXPECT_EQ(lay.total(), 10u);
  EXPECT_EQ(lay.owner(0), 0);
  EXPECT_EQ(lay.owner(5), 1);
  EXPECT_EQ(lay.owner(9), 3);
}

TEST(Layout, MorePartsThanItems) {
  const dist::BlockLayout lay(2, 4);
  EXPECT_EQ(lay.count(0), 1u);
  EXPECT_EQ(lay.count(1), 1u);
  EXPECT_EQ(lay.count(2), 0u);
  EXPECT_EQ(lay.count(3), 0u);
  EXPECT_EQ(lay.total(), 2u);
}

class TransposeParam : public ::testing::TestWithParam<int> {};

TEST_P(TransposeParam, BandGridRoundTrip) {
  const int p = GetParam();
  const size_t npw = 37, nb = 7;
  const la::MatC full = test::random_matrix(npw, nb, 200 + p);
  const dist::BlockLayout bands(nb, p), rows(npw, p);

  std::vector<la::MatC> grid_blocks(static_cast<size_t>(p));
  std::vector<la::MatC> back_blocks(static_cast<size_t>(p));
  ptmpi::run_ranks(p, 1, [&](ptmpi::Comm& c) {
    const int me = c.rank();
    la::MatC band_block(npw, bands.count(me));
    for (size_t b = 0; b < bands.count(me); ++b)
      for (size_t i = 0; i < npw; ++i)
        band_block(i, b) = full(i, bands.offset(me) + b);

    la::MatC g = dist::band_to_grid(c, band_block, bands, rows);
    grid_blocks[static_cast<size_t>(me)] = g;
    back_blocks[static_cast<size_t>(me)] =
        dist::grid_to_band(c, g, bands, rows);
  });

  // Grid blocks: rank r holds rows [rows.offset(r), ...) of all columns.
  for (int r = 0; r < p; ++r) {
    const auto& g = grid_blocks[static_cast<size_t>(r)];
    ASSERT_EQ(g.rows(), rows.count(r));
    ASSERT_EQ(g.cols(), nb);
    for (size_t b = 0; b < nb; ++b)
      for (size_t i = 0; i < rows.count(r); ++i)
        EXPECT_NEAR(std::abs(g(i, b) - full(rows.offset(r) + i, b)), 0.0,
                    1e-14);
  }
  // Round trip restores the band blocks.
  for (int r = 0; r < p; ++r) {
    const auto& bb = back_blocks[static_cast<size_t>(r)];
    for (size_t b = 0; b < bands.count(r); ++b)
      for (size_t i = 0; i < npw; ++i)
        EXPECT_NEAR(std::abs(bb(i, b) - full(i, bands.offset(r) + b)), 0.0,
                    1e-14);
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, TransposeParam,
                         ::testing::Values(1, 2, 3, 4, 7));

TEST(Overlap, DistributedMatchesSerial) {
  const size_t npw = 48, m = 5, n = 4;
  const la::MatC a = test::random_matrix(npw, m, 301);
  const la::MatC b = test::random_matrix(npw, n, 302);
  la::MatC ref(m, n);
  la::gemm_cn(a, b, ref);

  for (const bool use_shm : {false, true}) {
    const int p = 4;
    const dist::BlockLayout rows(npw, p);
    std::vector<la::MatC> results(static_cast<size_t>(p));
    ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
      const int me = c.rank();
      la::MatC ar(rows.count(me), m), br(rows.count(me), n);
      for (size_t j = 0; j < m; ++j)
        for (size_t i = 0; i < rows.count(me); ++i)
          ar(i, j) = a(rows.offset(me) + i, j);
      for (size_t j = 0; j < n; ++j)
        for (size_t i = 0; i < rows.count(me); ++i)
          br(i, j) = b(rows.offset(me) + i, j);
      results[static_cast<size_t>(me)] =
          dist::overlap_distributed(c, ar, br, use_shm);
    });
    for (int r = 0; r < p; ++r)
      EXPECT_LT(la::frob_diff(results[static_cast<size_t>(r)], ref), 1e-11)
          << "use_shm=" << use_shm << " rank=" << r;
  }
}

TEST(Overlap, ShmReducesAllreduceTraffic) {
  // Fig. 6's claim: with node-shared accumulation, allreduce bytes stay the
  // same per call but only node leaders contribute meaningful data; the
  // measurable proxy here is that the SHM path issues exactly one
  // allreduce while producing the same result (traffic reduction is a
  // netsim-level claim, correctness is checked above).
  const size_t npw = 32, m = 3;
  const la::MatC a = test::random_matrix(npw, m, 303);
  const int p = 4;
  const dist::BlockLayout rows(npw, p);
  ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
    const int me = c.rank();
    la::MatC ar(rows.count(me), m);
    for (size_t j = 0; j < m; ++j)
      for (size_t i = 0; i < rows.count(me); ++i)
        ar(i, j) = a(rows.offset(me) + i, j);
    (void)dist::overlap_distributed(c, ar, ar, true);
  });
  const auto& stats = ptmpi::last_run_stats();
  for (const auto& s : stats)
    EXPECT_EQ(s.ops.at("Allreduce").calls, 1);
}

// ------------------------------------------------------- exchange dist ---

namespace {
struct XEnv {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  ham::ExchangeOperator xop{map, {}};
};
}  // namespace

class ExchangePatternParam
    : public ::testing::TestWithParam<std::tuple<dist::ExchangePattern, int>> {
};

TEST_P(ExchangePatternParam, MatchesSerialOperator) {
  const auto [pattern, p] = GetParam();
  XEnv e;
  const size_t npw = e.sys.sphere->npw();
  const size_t nb = 6;
  const la::MatC src = test::random_orbitals(npw, nb, 401);
  std::vector<real_t> d{1.0, 0.9, 0.7, 0.4, 0.2, 0.05};
  const la::MatC tgt = src;

  la::MatC ref(npw, nb);
  e.xop.apply_diag(src, d, tgt, ref);

  const dist::BlockLayout bands(nb, p);
  std::vector<la::MatC> blocks(static_cast<size_t>(p));
  ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
    blocks[static_cast<size_t>(c.rank())] =
        dist::exchange_apply_distributed(c, e.xop, src, d, tgt, pattern);
  });

  for (int r = 0; r < p; ++r) {
    const auto& blk = blocks[static_cast<size_t>(r)];
    ASSERT_EQ(blk.cols(), bands.count(r));
    for (size_t b = 0; b < bands.count(r); ++b)
      for (size_t i = 0; i < npw; ++i)
        EXPECT_NEAR(std::abs(blk(i, b) - ref(i, bands.offset(r) + b)), 0.0,
                    1e-10)
            << dist::pattern_name(pattern) << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PatternsByRanks, ExchangePatternParam,
    ::testing::Combine(::testing::Values(dist::ExchangePattern::kBcast,
                                         dist::ExchangePattern::kRing,
                                         dist::ExchangePattern::kAsyncRing),
                       ::testing::Values(1, 2, 3, 4)));

TEST(ExchangeDist, LocalApiMatchesLegacyWrapper) {
  // Satellite pin: the refactored rank-local API and the legacy
  // full-replication wrapper agree with each other (bit-for-bit — the
  // wrapper slices and delegates) and with the serial operator.
  XEnv e;
  const size_t npw = e.sys.sphere->npw();
  const size_t nb = 7;  // non-divisible on 3 ranks
  const la::MatC src = test::random_orbitals(npw, nb, 410);
  std::vector<real_t> d{1.0, 0.9, 0.7, 0.4, 0.2, 0.05, 0.0};
  const la::MatC tgt = test::random_orbitals(npw, nb, 411);

  la::MatC ref(npw, nb);
  e.xop.apply_diag(src, d, tgt, ref);

  const int p = 3;
  const dist::BlockLayout sb(nb, p), tb(nb, p);
  for (const auto pat :
       {dist::ExchangePattern::kBcast, dist::ExchangePattern::kRing,
        dist::ExchangePattern::kAsyncRing}) {
    std::vector<la::MatC> legacy(static_cast<size_t>(p)),
        local(static_cast<size_t>(p));
    ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
      legacy[static_cast<size_t>(c.rank())] =
          dist::exchange_apply_distributed(c, e.xop, src, d, tgt, pat);
    });
    ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
      const int me = c.rank();
      const la::MatC src_local = dist::scatter_bands(src, sb, me);
      const la::MatC tgt_local = dist::scatter_bands(tgt, tb, me);
      const std::vector<real_t> d_local(
          d.begin() + static_cast<long>(sb.offset(me)),
          d.begin() + static_cast<long>(sb.offset(me) + sb.count(me)));
      local[static_cast<size_t>(me)] = dist::exchange_apply_distributed_local(
          c, e.xop, src_local, d_local, tgt_local, sb, pat);
    });
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(la::frob_diff(legacy[static_cast<size_t>(r)],
                              local[static_cast<size_t>(r)]),
                0.0)
          << dist::pattern_name(pat) << " rank " << r;
      const auto& blk = local[static_cast<size_t>(r)];
      for (size_t b = 0; b < tb.count(r); ++b)
        for (size_t i = 0; i < npw; ++i)
          EXPECT_NEAR(std::abs(blk(i, b) - ref(i, tb.offset(r) + b)), 0.0,
                      1e-10)
              << dist::pattern_name(pat);
    }
  }
}

TEST(ExchangeDist, MixedLocalMatchesSerialNaive) {
  // Full-sigma exchange on rank-local blocks (the distributed Baseline
  // path) against the serial Alg. 2 triple loop.
  XEnv e;
  const size_t npw = e.sys.sphere->npw();
  const size_t nb = 5;
  const la::MatC src = test::random_orbitals(npw, nb, 420);
  const la::MatC sigma = test::random_occupation_matrix(nb, 421);
  const la::MatC tgt = test::random_orbitals(npw, nb, 422);

  la::MatC ref(npw, nb);
  e.xop.apply_mixed_naive(src, sigma, tgt, ref);

  la::MatC theta(npw, nb);
  la::gemm_nn(src, sigma, theta);

  for (const int p : {2, 3}) {
    const dist::BlockLayout sb(nb, p), tb(nb, p);
    std::vector<la::MatC> blocks(static_cast<size_t>(p));
    ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
      const int me = c.rank();
      blocks[static_cast<size_t>(me)] =
          dist::exchange_apply_distributed_mixed_local(
              c, e.xop, dist::scatter_bands(src, sb, me),
              dist::scatter_bands(theta, sb, me),
              dist::scatter_bands(tgt, tb, me), sb,
              dist::ExchangePattern::kAsyncRing);
    });
    for (int r = 0; r < p; ++r) {
      const auto& blk = blocks[static_cast<size_t>(r)];
      for (size_t b = 0; b < tb.count(r); ++b)
        for (size_t i = 0; i < npw; ++i)
          EXPECT_NEAR(std::abs(blk(i, b) - ref(i, tb.offset(r) + b)), 0.0,
                      1e-10)
              << "p=" << p;
    }
  }
}

TEST(ExchangeDist, GammaRealMatchesSerialAndIsPatternInvariant) {
  // Γ-point distributed fast path: with real orbitals on every rank, REAL
  // slabs circulate and the per-origin staged reduction makes the result
  // bitwise-IDENTICAL across the three circulation patterns (the complex
  // path only promises per-pattern determinism — its accumulation order
  // follows slab arrival). Also pinned against the serial gamma apply.
  XEnv e;
  ham::ExchangeOptions opt;
  opt.gamma_real = true;
  ham::ExchangeOperator xg{e.map, opt};
  const size_t npw = e.sys.sphere->npw();
  const size_t nb = 5;  // odd band count, non-divisible on 4 ranks
  const la::MatC src = test::random_real_orbitals(e.map, nb, 430);
  const la::MatC tgt = test::random_real_orbitals(e.map, nb, 431);
  const std::vector<real_t> d{1.0, 0.8, 0.5, 0.3, 0.0};

  la::MatC ref(npw, nb);
  xg.apply_diag(src, d, tgt, ref);

  const int p = 4;
  const dist::BlockLayout sb(nb, p), tb(nb, p);
  std::vector<std::vector<la::MatC>> by_pattern;
  for (const auto pat :
       {dist::ExchangePattern::kBcast, dist::ExchangePattern::kRing,
        dist::ExchangePattern::kAsyncRing}) {
    std::vector<la::MatC> blocks(static_cast<size_t>(p));
    ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
      const int me = c.rank();
      const std::vector<real_t> d_local(
          d.begin() + static_cast<long>(sb.offset(me)),
          d.begin() + static_cast<long>(sb.offset(me) + sb.count(me)));
      blocks[static_cast<size_t>(me)] = dist::exchange_apply_distributed_local(
          c, xg, dist::scatter_bands(src, sb, me), d_local,
          dist::scatter_bands(tgt, tb, me), sb, pat);
    });
    for (int r = 0; r < p; ++r) {
      const auto& blk = blocks[static_cast<size_t>(r)];
      for (size_t b = 0; b < tb.count(r); ++b)
        for (size_t i = 0; i < npw; ++i)
          EXPECT_NEAR(std::abs(blk(i, b) - ref(i, tb.offset(r) + b)), 0.0,
                      1e-10)
              << dist::pattern_name(pat);
    }
    by_pattern.push_back(std::move(blocks));
  }
  for (size_t k = 1; k < by_pattern.size(); ++k)
    for (int r = 0; r < p; ++r)
      EXPECT_EQ(la::frob_diff(by_pattern[k][static_cast<size_t>(r)],
                              by_pattern[0][static_cast<size_t>(r)]),
                0.0)
          << "pattern " << k << " rank " << r;
}

TEST(ExchangeDist, GammaRealHalvesRingBytes) {
  // The gamma circulation moves real_t slabs where the complex one moves
  // cplx — exactly half the Sendrecv bytes per rank on the ring pattern.
  XEnv e;
  ham::ExchangeOptions opt;
  opt.gamma_real = true;
  ham::ExchangeOperator xg{e.map, opt};
  const size_t nb = 6;
  const la::MatC src = test::random_real_orbitals(e.map, nb, 432);
  const la::MatC tgt = test::random_real_orbitals(e.map, nb, 433);
  const std::vector<real_t> d{1.0, 0.9, 0.7, 0.4, 0.2, 0.1};

  const int p = 4;
  auto ring_bytes = [&](const ham::ExchangeOperator& x) {
    ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
      (void)dist::exchange_apply_distributed(c, x, src, d, tgt,
                                             dist::ExchangePattern::kRing);
    });
    long long bytes = 0;
    for (const auto& s : ptmpi::last_run_stats())
      bytes += s.ops.at("Sendrecv").bytes;
    return bytes;
  };
  const long long complex_bytes = ring_bytes(e.xop);
  const long long gamma_bytes = ring_bytes(xg);
  EXPECT_EQ(2 * gamma_bytes, complex_bytes);
}

TEST(ExchangeDist, GammaRealComplexOrbitalsFallBackBitwise) {
  // Complex orbitals anywhere must fail the rank vote; the apply then runs
  // the complex circulation bit-for-bit as with gamma_real off.
  XEnv e;
  ham::ExchangeOptions opt;
  opt.gamma_real = true;
  ham::ExchangeOperator xg{e.map, opt};
  const size_t nb = 5;
  const la::MatC src = test::random_orbitals(e.sys.sphere->npw(), nb, 434);
  const la::MatC tgt = test::random_orbitals(e.sys.sphere->npw(), nb, 435);
  const std::vector<real_t> d{1.0, 0.8, 0.5, 0.3, 0.1};

  const int p = 3;
  for (const auto pat :
       {dist::ExchangePattern::kBcast, dist::ExchangePattern::kAsyncRing}) {
    std::vector<la::MatC> off(static_cast<size_t>(p)),
        on(static_cast<size_t>(p));
    ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
      off[static_cast<size_t>(c.rank())] =
          dist::exchange_apply_distributed(c, e.xop, src, d, tgt, pat);
    });
    ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
      on[static_cast<size_t>(c.rank())] =
          dist::exchange_apply_distributed(c, xg, src, d, tgt, pat);
    });
    for (int r = 0; r < p; ++r)
      EXPECT_EQ(la::frob_diff(off[static_cast<size_t>(r)],
                              on[static_cast<size_t>(r)]),
                0.0)
          << dist::pattern_name(pat) << " rank " << r;
  }
}

// ------------------------------------------------------------- rotation ---

class RotateParam : public ::testing::TestWithParam<int> {};

TEST_P(RotateParam, MatchesSerialGemm) {
  const int p = GetParam();
  const size_t npw = 41, nb = 7;
  const la::MatC a = test::random_matrix(npw, nb, 500 + p);
  const la::MatC r = test::random_matrix(nb, nb, 510 + p);
  la::MatC ref(npw, nb);
  la::gemm_nn(a, r, ref);

  const dist::BlockLayout bands(nb, p);
  for (const auto pat :
       {dist::ExchangePattern::kBcast, dist::ExchangePattern::kRing,
        dist::ExchangePattern::kAsyncRing}) {
    std::vector<la::MatC> blocks(static_cast<size_t>(p));
    ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
      blocks[static_cast<size_t>(c.rank())] = dist::rotate_bands(
          c, dist::scatter_bands(a, bands, c.rank()), r, bands, pat);
    });
    for (int q = 0; q < p; ++q)
      for (size_t b = 0; b < bands.count(q); ++b)
        for (size_t i = 0; i < npw; ++i)
          EXPECT_NEAR(std::abs(blocks[static_cast<size_t>(q)](i, b) -
                               ref(i, bands.offset(q) + b)),
                      0.0, 1e-12)
              << dist::pattern_name(pat) << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, RotateParam,
                         ::testing::Values(1, 2, 3, 4, 9));

TEST(Rotate, SolveUpperRightDistributedMatchesSerial) {
  const size_t npw = 33, nb = 6;
  const la::MatC a = test::random_matrix(npw, nb, 520);
  const la::MatC spd = [&] {
    la::MatC h = test::random_hermitian(nb, 521);
    for (size_t i = 0; i < nb; ++i) h(i, i) += 4.0;
    return h;
  }();
  const la::MatC l = la::cholesky(spd);
  la::MatC ref = a;
  la::solve_upper_right(l, ref);

  const int p = 3;
  const dist::BlockLayout bands(nb, p), rows(npw, p);
  std::vector<la::MatC> blocks(static_cast<size_t>(p));
  ptmpi::run_ranks(p, 1, [&](ptmpi::Comm& c) {
    blocks[static_cast<size_t>(c.rank())] = dist::solve_upper_right_distributed(
        c, l, dist::scatter_bands(a, bands, c.rank()), bands, rows);
  });
  for (int q = 0; q < p; ++q)
    for (size_t b = 0; b < bands.count(q); ++b)
      for (size_t i = 0; i < npw; ++i)
        // The transpose-solve-transpose path runs the identical per-row
        // arithmetic as the serial solve: exact agreement.
        EXPECT_EQ(blocks[static_cast<size_t>(q)](i, b),
                  ref(i, bands.offset(q) + b));
}

TEST(Rotate, GatherScatterRoundTrip) {
  const size_t npw = 29, nb = 5;
  const la::MatC full = test::random_matrix(npw, nb, 530);
  const int p = 4;
  const dist::BlockLayout bands(nb, p);
  std::vector<la::MatC> gathered(static_cast<size_t>(p));
  ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
    const la::MatC local = dist::scatter_bands(full, bands, c.rank());
    gathered[static_cast<size_t>(c.rank())] =
        dist::gather_bands(c, local, bands);
  });
  for (int r = 0; r < p; ++r)
    EXPECT_EQ(la::frob_diff(gathered[static_cast<size_t>(r)], full), 0.0);
}

// -------------------------------------------------------- Anderson mixer ---

TEST(DistMixer, MatchesSerialAndersonMixer) {
  // Same fixed-point iteration history fed to the serial mixer on the full
  // vector and to the distributed mixer on (local block ++ shared tail):
  // the mixed iterates must agree to rounding on every rank.
  const size_t local_total = 48, shared = 9;
  const int p = 3;
  const dist::BlockLayout lay(local_total, p);
  const int iters = 6;

  // Build a deterministic sequence of (x, f) pairs.
  std::vector<std::vector<cplx>> xs, fs;
  Rng rng(77);
  for (int k = 0; k < iters; ++k) {
    std::vector<cplx> x(local_total + shared), f(local_total + shared);
    for (auto& v : x) v = rng.uniform_cplx();
    for (auto& v : f) v = rng.uniform_cplx() * 0.1;
    xs.push_back(x);
    fs.push_back(f);
  }

  la::AndersonMixer serial(local_total + shared, 20, 0.7);
  std::vector<std::vector<cplx>> serial_out;
  for (int k = 0; k < iters; ++k)
    serial_out.push_back(serial.mix(xs[static_cast<size_t>(k)],
                                    fs[static_cast<size_t>(k)]));

  std::vector<std::vector<std::vector<cplx>>> dist_out(
      static_cast<size_t>(p));
  ptmpi::run_ranks(p, 1, [&](ptmpi::Comm& c) {
    const int me = c.rank();
    const size_t n_loc = lay.count(me), off = lay.offset(me);
    dist::DistAndersonMixer mixer(c, n_loc, shared, 20, 0.7);
    for (int k = 0; k < iters; ++k) {
      std::vector<cplx> x(n_loc + shared), f(n_loc + shared);
      for (size_t i = 0; i < n_loc; ++i) {
        x[i] = xs[static_cast<size_t>(k)][off + i];
        f[i] = fs[static_cast<size_t>(k)][off + i];
      }
      for (size_t i = 0; i < shared; ++i) {
        x[n_loc + i] = xs[static_cast<size_t>(k)][local_total + i];
        f[n_loc + i] = fs[static_cast<size_t>(k)][local_total + i];
      }
      dist_out[static_cast<size_t>(me)].push_back(mixer.mix(x, f));
    }
  });

  for (int r = 0; r < p; ++r) {
    const size_t n_loc = lay.count(r), off = lay.offset(r);
    for (int k = 0; k < iters; ++k) {
      const auto& got =
          dist_out[static_cast<size_t>(r)][static_cast<size_t>(k)];
      const auto& want = serial_out[static_cast<size_t>(k)];
      for (size_t i = 0; i < n_loc; ++i)
        EXPECT_NEAR(std::abs(got[i] - want[off + i]), 0.0, 1e-12)
            << "rank " << r << " iter " << k;
      for (size_t i = 0; i < shared; ++i)
        EXPECT_NEAR(std::abs(got[n_loc + i] - want[local_total + i]), 0.0,
                    1e-12)
            << "rank " << r << " iter " << k << " shared";
    }
  }
}

TEST(ExchangeDist, RingUsesSendrecvNotBcast) {
  // The communication-pattern shift the paper's Table I reports: Bcast
  // bytes collapse to zero under the ring variants, replaced by Sendrecv
  // (sync) or Wait (async).
  XEnv e;
  const size_t npw = e.sys.sphere->npw();
  const la::MatC src = test::random_orbitals(npw, 4, 402);
  const std::vector<real_t> d{1.0, 0.8, 0.5, 0.2};

  auto run = [&](dist::ExchangePattern pat) {
    ptmpi::run_ranks(4, 2, [&](ptmpi::Comm& c) {
      (void)dist::exchange_apply_distributed(c, e.xop, src, d, src, pat);
    });
    return ptmpi::last_run_stats();
  };

  const auto s_bcast = run(dist::ExchangePattern::kBcast);
  EXPECT_GT(s_bcast[0].ops.at("Bcast").calls, 0);
  EXPECT_EQ(s_bcast[0].ops.count("Sendrecv"), 0u);

  const auto s_ring = run(dist::ExchangePattern::kRing);
  EXPECT_EQ(s_ring[0].ops.count("Bcast"), 0u);
  EXPECT_EQ(s_ring[0].ops.at("Sendrecv").calls, 3);  // p-1 steps

  const auto s_async = run(dist::ExchangePattern::kAsyncRing);
  EXPECT_EQ(s_async[0].ops.count("Bcast"), 0u);
  EXPECT_EQ(s_async[0].ops.count("Sendrecv"), 0u);
  EXPECT_GT(s_async[0].ops.at("Wait").calls, 0);
}

TEST(ExchangeDist, RingReusesPersistentSlabBuffers) {
  // Drive-by fix pin: the circulation engine must hold its slab storage in
  // a FIXED set of persistent buffers reused across all p rounds (double
  // buffering), never reallocating per round — on a device backend a
  // per-round allocation would serialize the streams. The global
  // backend::Buffer allocation counter makes the property observable:
  // rings cost exactly 2 buffers per rank, Bcast 1, independent of the
  // number of rounds, in both the sync and the stream-pipelined engines.
  XEnv e;
  const size_t npw = e.sys.sphere->npw();
  const la::MatC src = test::random_orbitals(npw, 6, 460);
  const std::vector<real_t> d{1.0, 0.8, 0.6, 0.4, 0.2, 0.1};

  for (const auto kind : {backend::Kind::kSync, backend::Kind::kHostAsync}) {
    ham::ExchangeOptions opt;
    opt.backend = kind;
    ham::ExchangeOperator xop(e.map, opt);
    for (const int p : {2, 3, 6}) {  // round count varies 2 -> 6
      for (const auto pat :
           {dist::ExchangePattern::kBcast, dist::ExchangePattern::kRing,
            dist::ExchangePattern::kAsyncRing}) {
        const long before = backend::buffer_alloc_count();
        ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
          (void)dist::exchange_apply_distributed(c, xop, src, d, src, pat);
        });
        // Pipelined engines double-buffer every pattern; the sync engine
        // single-buffers Bcast. Assert the exact TOTAL so a single rank
        // over-allocating cannot hide in integer division.
        const long expected_per_rank =
            (kind == backend::Kind::kSync &&
             pat == dist::ExchangePattern::kBcast)
                ? 1
                : 2;
        EXPECT_EQ(backend::buffer_alloc_count() - before,
                  expected_per_rank * p)
            << backend::kind_name(kind) << " " << dist::pattern_name(pat)
            << " p=" << p;
      }
    }
  }
}
