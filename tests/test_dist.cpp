// Distributed kernels: block layouts, the Fig. 1 Alltoallv transpose, the
// Fig. 6 SHM overlap reduction, and — centrally — the equality of the
// Bcast / Ring / Async-Ring exchange patterns with the serial operator.

#include <gtest/gtest.h>

#include "dist/exchange_dist.hpp"
#include "dist/layout.hpp"
#include "dist/transpose.hpp"
#include "la/blas.hpp"
#include "test_helpers.hpp"

using namespace ptim;

TEST(Layout, BlockDecomposition) {
  const dist::BlockLayout lay(10, 4);
  // 10 = 3 + 3 + 2 + 2.
  EXPECT_EQ(lay.count(0), 3u);
  EXPECT_EQ(lay.count(1), 3u);
  EXPECT_EQ(lay.count(2), 2u);
  EXPECT_EQ(lay.count(3), 2u);
  EXPECT_EQ(lay.offset(0), 0u);
  EXPECT_EQ(lay.offset(3), 8u);
  EXPECT_EQ(lay.total(), 10u);
  EXPECT_EQ(lay.owner(0), 0);
  EXPECT_EQ(lay.owner(5), 1);
  EXPECT_EQ(lay.owner(9), 3);
}

TEST(Layout, MorePartsThanItems) {
  const dist::BlockLayout lay(2, 4);
  EXPECT_EQ(lay.count(0), 1u);
  EXPECT_EQ(lay.count(1), 1u);
  EXPECT_EQ(lay.count(2), 0u);
  EXPECT_EQ(lay.count(3), 0u);
  EXPECT_EQ(lay.total(), 2u);
}

class TransposeParam : public ::testing::TestWithParam<int> {};

TEST_P(TransposeParam, BandGridRoundTrip) {
  const int p = GetParam();
  const size_t npw = 37, nb = 7;
  const la::MatC full = test::random_matrix(npw, nb, 200 + p);
  const dist::BlockLayout bands(nb, p), rows(npw, p);

  std::vector<la::MatC> grid_blocks(static_cast<size_t>(p));
  std::vector<la::MatC> back_blocks(static_cast<size_t>(p));
  ptmpi::run_ranks(p, 1, [&](ptmpi::Comm& c) {
    const int me = c.rank();
    la::MatC band_block(npw, bands.count(me));
    for (size_t b = 0; b < bands.count(me); ++b)
      for (size_t i = 0; i < npw; ++i)
        band_block(i, b) = full(i, bands.offset(me) + b);

    la::MatC g = dist::band_to_grid(c, band_block, bands, rows);
    grid_blocks[static_cast<size_t>(me)] = g;
    back_blocks[static_cast<size_t>(me)] =
        dist::grid_to_band(c, g, bands, rows);
  });

  // Grid blocks: rank r holds rows [rows.offset(r), ...) of all columns.
  for (int r = 0; r < p; ++r) {
    const auto& g = grid_blocks[static_cast<size_t>(r)];
    ASSERT_EQ(g.rows(), rows.count(r));
    ASSERT_EQ(g.cols(), nb);
    for (size_t b = 0; b < nb; ++b)
      for (size_t i = 0; i < rows.count(r); ++i)
        EXPECT_NEAR(std::abs(g(i, b) - full(rows.offset(r) + i, b)), 0.0,
                    1e-14);
  }
  // Round trip restores the band blocks.
  for (int r = 0; r < p; ++r) {
    const auto& bb = back_blocks[static_cast<size_t>(r)];
    for (size_t b = 0; b < bands.count(r); ++b)
      for (size_t i = 0; i < npw; ++i)
        EXPECT_NEAR(std::abs(bb(i, b) - full(i, bands.offset(r) + b)), 0.0,
                    1e-14);
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, TransposeParam,
                         ::testing::Values(1, 2, 3, 4, 7));

TEST(Overlap, DistributedMatchesSerial) {
  const size_t npw = 48, m = 5, n = 4;
  const la::MatC a = test::random_matrix(npw, m, 301);
  const la::MatC b = test::random_matrix(npw, n, 302);
  la::MatC ref(m, n);
  la::gemm_cn(a, b, ref);

  for (const bool use_shm : {false, true}) {
    const int p = 4;
    const dist::BlockLayout rows(npw, p);
    std::vector<la::MatC> results(static_cast<size_t>(p));
    ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
      const int me = c.rank();
      la::MatC ar(rows.count(me), m), br(rows.count(me), n);
      for (size_t j = 0; j < m; ++j)
        for (size_t i = 0; i < rows.count(me); ++i)
          ar(i, j) = a(rows.offset(me) + i, j);
      for (size_t j = 0; j < n; ++j)
        for (size_t i = 0; i < rows.count(me); ++i)
          br(i, j) = b(rows.offset(me) + i, j);
      results[static_cast<size_t>(me)] =
          dist::overlap_distributed(c, ar, br, use_shm);
    });
    for (int r = 0; r < p; ++r)
      EXPECT_LT(la::frob_diff(results[static_cast<size_t>(r)], ref), 1e-11)
          << "use_shm=" << use_shm << " rank=" << r;
  }
}

TEST(Overlap, ShmReducesAllreduceTraffic) {
  // Fig. 6's claim: with node-shared accumulation, allreduce bytes stay the
  // same per call but only node leaders contribute meaningful data; the
  // measurable proxy here is that the SHM path issues exactly one
  // allreduce while producing the same result (traffic reduction is a
  // netsim-level claim, correctness is checked above).
  const size_t npw = 32, m = 3;
  const la::MatC a = test::random_matrix(npw, m, 303);
  const int p = 4;
  const dist::BlockLayout rows(npw, p);
  ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
    const int me = c.rank();
    la::MatC ar(rows.count(me), m);
    for (size_t j = 0; j < m; ++j)
      for (size_t i = 0; i < rows.count(me); ++i)
        ar(i, j) = a(rows.offset(me) + i, j);
    (void)dist::overlap_distributed(c, ar, ar, true);
  });
  const auto& stats = ptmpi::last_run_stats();
  for (const auto& s : stats)
    EXPECT_EQ(s.ops.at("Allreduce").calls, 1);
}

// ------------------------------------------------------- exchange dist ---

namespace {
struct XEnv {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  ham::ExchangeOperator xop{map, {}};
};
}  // namespace

class ExchangePatternParam
    : public ::testing::TestWithParam<std::tuple<dist::ExchangePattern, int>> {
};

TEST_P(ExchangePatternParam, MatchesSerialOperator) {
  const auto [pattern, p] = GetParam();
  XEnv e;
  const size_t npw = e.sys.sphere->npw();
  const size_t nb = 6;
  const la::MatC src = test::random_orbitals(npw, nb, 401);
  std::vector<real_t> d{1.0, 0.9, 0.7, 0.4, 0.2, 0.05};
  const la::MatC tgt = src;

  la::MatC ref(npw, nb);
  e.xop.apply_diag(src, d, tgt, ref);

  const dist::BlockLayout bands(nb, p);
  std::vector<la::MatC> blocks(static_cast<size_t>(p));
  ptmpi::run_ranks(p, 2, [&](ptmpi::Comm& c) {
    blocks[static_cast<size_t>(c.rank())] =
        dist::exchange_apply_distributed(c, e.xop, src, d, tgt, pattern);
  });

  for (int r = 0; r < p; ++r) {
    const auto& blk = blocks[static_cast<size_t>(r)];
    ASSERT_EQ(blk.cols(), bands.count(r));
    for (size_t b = 0; b < bands.count(r); ++b)
      for (size_t i = 0; i < npw; ++i)
        EXPECT_NEAR(std::abs(blk(i, b) - ref(i, bands.offset(r) + b)), 0.0,
                    1e-10)
            << dist::pattern_name(pattern) << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PatternsByRanks, ExchangePatternParam,
    ::testing::Combine(::testing::Values(dist::ExchangePattern::kBcast,
                                         dist::ExchangePattern::kRing,
                                         dist::ExchangePattern::kAsyncRing),
                       ::testing::Values(1, 2, 3, 4)));

TEST(ExchangeDist, RingUsesSendrecvNotBcast) {
  // The communication-pattern shift the paper's Table I reports: Bcast
  // bytes collapse to zero under the ring variants, replaced by Sendrecv
  // (sync) or Wait (async).
  XEnv e;
  const size_t npw = e.sys.sphere->npw();
  const la::MatC src = test::random_orbitals(npw, 4, 402);
  const std::vector<real_t> d{1.0, 0.8, 0.5, 0.2};

  auto run = [&](dist::ExchangePattern pat) {
    ptmpi::run_ranks(4, 2, [&](ptmpi::Comm& c) {
      (void)dist::exchange_apply_distributed(c, e.xop, src, d, src, pat);
    });
    return ptmpi::last_run_stats();
  };

  const auto s_bcast = run(dist::ExchangePattern::kBcast);
  EXPECT_GT(s_bcast[0].ops.at("Bcast").calls, 0);
  EXPECT_EQ(s_bcast[0].ops.count("Sendrecv"), 0u);

  const auto s_ring = run(dist::ExchangePattern::kRing);
  EXPECT_EQ(s_ring[0].ops.count("Bcast"), 0u);
  EXPECT_EQ(s_ring[0].ops.at("Sendrecv").calls, 3);  // p-1 steps

  const auto s_async = run(dist::ExchangePattern::kAsyncRing);
  EXPECT_EQ(s_async[0].ops.count("Bcast"), 0u);
  EXPECT_EQ(s_async[0].ops.count("Sendrecv"), 0u);
  EXPECT_GT(s_async[0].ops.at("Wait").calls, 0);
}
