// ISDF low-rank exchange (ham/isdf + la/qr + dist/isdf_dist):
//  * the pivoted-QR primitive — pivot quality on a matrix with known
//    dominant columns, non-increasing |R| diagonal, bitwise determinism;
//  * ExchangeOptions validation (batch_size, isdf_rank_factor);
//  * ISDF-vs-dense apply accuracy at the default rank factor, with the
//    fit residual decreasing as the rank factor grows;
//  * FP32 / FP32+Kahan policy parity on the compressed path;
//  * bitwise-deterministic point selection (repeat fits, and across the
//    ranks of a band-parallel fit);
//  * band-parallel ISDF vs the serial operator, packed-vs-single routing,
//    and the pg > 1 rejection;
//  * a 10-step golden-trajectory replay under kIsdf within 1e-7.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dist/band_ham.hpp"
#include "dist/exchange_dist.hpp"
#include "dist/isdf_dist.hpp"
#include "dist/rotate.hpp"
#include "ham/density.hpp"
#include "ham/exchange.hpp"
#include "ham/isdf.hpp"
#include "la/blas.hpp"
#include "la/qr.hpp"
#include "td/observables.hpp"
#include "td/ptim.hpp"
#include "test_helpers.hpp"

using namespace ptim;

namespace {

ham::ExchangeOperator make_xop(const pw::SphereGridMap& map,
                               ham::ExchangeCompression comp,
                               real_t rank_factor = 8.0,
                               Precision p = Precision::kDouble) {
  ham::ExchangeOptions opt;
  opt.precision = p;
  opt.compression = comp;
  opt.isdf_rank_factor = rank_factor;
  return ham::ExchangeOperator(map, opt);
}

// Relative Frobenius distance of the compressed apply to the dense one on
// a shared problem (nb sources, a few zero occupations, 4 targets).
struct ApplyProblem {
  la::MatC phi, tgt;
  std::vector<real_t> d;

  static ApplyProblem make(size_t npw, size_t nb, unsigned seed) {
    ApplyProblem p;
    p.phi = test::random_orbitals(npw, nb, seed);
    p.tgt = test::random_orbitals(npw, 4, seed + 1);
    p.d.resize(nb);
    for (size_t i = 0; i < nb; ++i)
      p.d[i] = i + 2 < nb ? 1.0 - 0.1 * static_cast<real_t>(i) : 0.0;
    return p;
  }
};

real_t isdf_rel_error(const pw::SphereGridMap& map, const ApplyProblem& p,
                      real_t rank_factor,
                      Precision prec = Precision::kDouble) {
  const size_t npw = p.phi.rows();
  const auto dense = make_xop(map, ham::ExchangeCompression::kDense);
  la::MatC ref(npw, p.tgt.cols());
  dense.apply_diag(p.phi, p.d, p.tgt, ref);

  const auto xisdf =
      make_xop(map, ham::ExchangeCompression::kIsdf, rank_factor, prec);
  la::MatC out(npw, p.tgt.cols());
  xisdf.apply_diag(p.phi, p.d, p.tgt, out);
  return la::frob_diff(out, ref) / std::max(la::frob_norm(ref), real_t(1e-30));
}

}  // namespace

// ------------------------------------------------------ pivoted QR ------

TEST(PivotedQr, PicksDominantColumnsFirst) {
  // Columns with well-separated scales: the pivot order must visit them by
  // magnitude, and the |R| diagonal must be non-increasing.
  const size_t m = 24, n = 8;
  la::MatC a = test::random_matrix(m, n, 311);
  const real_t scales[n] = {1e-6, 1.0, 1e-4, 1e3, 1e-2, 10.0, 1e-5, 1e2};
  for (size_t j = 0; j < n; ++j)
    for (size_t i = 0; i < m; ++i) a(i, j) *= scales[j];

  const la::PivotedQr qr = la::qr_column_pivot(a, n);
  ASSERT_EQ(qr.pivots.size(), n);
  ASSERT_EQ(qr.rdiag.size(), n);
  // The four large columns (3, 7, 5, 1) must be picked before any of the
  // small ones.
  EXPECT_EQ(qr.pivots[0], 3u);
  EXPECT_EQ(qr.pivots[1], 7u);
  EXPECT_EQ(qr.pivots[2], 5u);
  EXPECT_EQ(qr.pivots[3], 1u);
  for (size_t k = 1; k < n; ++k)
    EXPECT_LE(qr.rdiag[k], qr.rdiag[k - 1] + 1e-12);
  // Pivots form a permutation.
  std::vector<bool> seen(n, false);
  for (size_t k = 0; k < n; ++k) {
    ASSERT_LT(qr.pivots[k], n);
    EXPECT_FALSE(seen[qr.pivots[k]]);
    seen[qr.pivots[k]] = true;
  }
}

TEST(PivotedQr, TruncatedRankAndDeterminism) {
  const size_t m = 40, n = 17, r = 5;
  const la::MatC a = test::random_matrix(m, n, 313);
  const la::PivotedQr q1 = la::qr_column_pivot(a, r);
  const la::PivotedQr q2 = la::qr_column_pivot(a, r);
  ASSERT_EQ(q1.pivots.size(), r);
  EXPECT_EQ(q1.pivots, q2.pivots);
  ASSERT_EQ(q1.rdiag.size(), r);
  for (size_t k = 0; k < r; ++k) {
    // Bitwise: the factorization is deterministic, not just stable.
    EXPECT_EQ(q1.rdiag[k], q2.rdiag[k]);
  }
}

// ------------------------------------------------------ validation ------

TEST(IsdfValidation, RejectsBadOptionsAtConstruction) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};

  ham::ExchangeOptions bad_batch;
  bad_batch.batch_size = 0;
  EXPECT_THROW(ham::ExchangeOperator(map, bad_batch), Error);

  ham::ExchangeOptions bad_rank;
  bad_rank.isdf_rank_factor = 0.0;
  EXPECT_THROW(ham::ExchangeOperator(map, bad_rank), Error);
  bad_rank.isdf_rank_factor = -2.5;
  EXPECT_THROW(ham::ExchangeOperator(map, bad_rank), Error);

  auto xop = make_xop(map, ham::ExchangeCompression::kDense);
  EXPECT_THROW(xop.set_isdf_rank_factor(-1.0), Error);
  EXPECT_THROW(xop.set_isdf_rank_factor(0.0), Error);
  xop.set_isdf_rank_factor(4.0);  // valid values still go through
  EXPECT_EQ(xop.isdf_rank_factor(), 4.0);
}

// -------------------------------------------------------- accuracy ------

TEST(Isdf, MatchesDenseAtDefaultRank) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const auto p = ApplyProblem::make(sys.sphere->npw(), 8, 411);
  EXPECT_LE(isdf_rel_error(map, p, 8.0), 1e-6);
}

TEST(Isdf, ErrorDecreasesWithRankFactor) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const auto p = ApplyProblem::make(sys.sphere->npw(), 8, 413);
  const real_t e2 = isdf_rel_error(map, p, 2.0);
  const real_t e4 = isdf_rel_error(map, p, 4.0);
  const real_t e8 = isdf_rel_error(map, p, 8.0);
  // Monotone within a small slack (the point sets are not nested), and
  // substantially so across the full sweep.
  EXPECT_LE(e4, e2 * 1.05);
  EXPECT_LE(e8, e4 * 1.05);
  EXPECT_LE(e8, 0.5 * e2);
}

TEST(Isdf, SinglePrecisionPolicyParity) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const size_t npw = sys.sphere->npw();
  const auto p = ApplyProblem::make(npw, 8, 415);

  const auto x64 = make_xop(map, ham::ExchangeCompression::kIsdf, 8.0);
  la::MatC ref(npw, p.tgt.cols());
  x64.apply_diag(p.phi, p.d, p.tgt, ref);
  const real_t scale = std::max(la::frob_norm(ref), real_t(1.0));

  real_t err_single = 0.0, err_comp = 0.0;
  for (const Precision prec :
       {Precision::kSingle, Precision::kSingleCompensated}) {
    const auto x32 = make_xop(map, ham::ExchangeCompression::kIsdf, 8.0, prec);
    la::MatC out(npw, p.tgt.cols());
    x32.apply_diag(p.phi, p.d, p.tgt, out);
    const real_t err = la::frob_diff(out, ref) / scale;
    EXPECT_LE(err, 1e-5) << precision_name(prec);
    (prec == Precision::kSingle ? err_single : err_comp) = err;
  }
  // Kahan compensation never hurts.
  EXPECT_LE(err_comp, err_single * 1.5);
}

// --------------------------------------------------- determinism --------

TEST(Isdf, PointSelectionIsBitwiseDeterministic) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const size_t ng = sys.wfc_grid->size();
  const auto p = ApplyProblem::make(sys.sphere->npw(), 8, 417);
  const auto xop = make_xop(map, ham::ExchangeCompression::kIsdf, 6.0);

  la::MatC src_real, tgt_real;
  map.to_real_batch(p.phi, src_real);
  map.to_real_batch(p.tgt, tgt_real);
  ASSERT_EQ(src_real.rows(), ng);

  const ham::isdf::Fit f1 = ham::isdf::fit_diag(xop, src_real, p.d, tgt_real);
  const ham::isdf::Fit f2 = ham::isdf::fit_diag(xop, src_real, p.d, tgt_real);
  ASSERT_FALSE(f1.points.empty());
  EXPECT_EQ(f1.points, f2.points);
  ASSERT_EQ(f1.apply_mat.size(), f2.apply_mat.size());
  for (size_t i = 0; i < f1.apply_mat.size(); ++i)
    EXPECT_EQ(f1.apply_mat.data()[i], f2.apply_mat.data()[i]);
}

// ------------------------------------------------------ distributed -----

TEST(IsdfDist, FitIsBitwiseIdenticalAcrossRanks) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const size_t npw = sys.sphere->npw();
  const size_t nb = 7;  // non-divisible over 3 ranks
  const auto p = ApplyProblem::make(npw, nb, 421);
  const int nranks = 3;
  const dist::BlockLayout bands(nb, nranks);

  std::vector<ham::isdf::Fit> fits(nranks);
  ptmpi::run_ranks(nranks, 1, [&](ptmpi::Comm& c) {
    const int me = c.rank();
    const auto xop = make_xop(map, ham::ExchangeCompression::kIsdf, 6.0);
    const la::MatC src_local = dist::scatter_bands(p.phi, bands, me);
    const la::MatC tgt_local = dist::scatter_bands(p.tgt, bands, me);
    fits[static_cast<size_t>(me)] =
        dist::isdf_fit_distributed(c, xop, src_local, p.d, tgt_local, bands);
  });

  ASSERT_FALSE(fits[0].points.empty());
  for (int r = 1; r < nranks; ++r) {
    EXPECT_EQ(fits[static_cast<size_t>(r)].points, fits[0].points);
    ASSERT_EQ(fits[static_cast<size_t>(r)].apply_mat.size(),
              fits[0].apply_mat.size());
    for (size_t i = 0; i < fits[0].apply_mat.size(); ++i)
      EXPECT_EQ(fits[static_cast<size_t>(r)].apply_mat.data()[i],
                fits[0].apply_mat.data()[i]);
  }
}

TEST(IsdfDist, MatchesSerialOperator) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const size_t npw = sys.sphere->npw();
  const size_t nb = 7;
  const auto p = ApplyProblem::make(npw, nb, 423);

  const auto xser = make_xop(map, ham::ExchangeCompression::kIsdf, 6.0);
  la::MatC ref(npw, nb);
  // Serial reference applies onto the FULL band block; the distributed run
  // slices the same targets.
  xser.apply_diag(p.phi, p.d, p.phi, ref);
  const real_t scale = std::max(la::frob_norm(ref), real_t(1.0));

  for (const int nranks : {2, 3}) {
    const dist::BlockLayout bands(nb, nranks);
    std::vector<la::MatC> outs(static_cast<size_t>(nranks));
    ptmpi::run_ranks(nranks, 1, [&](ptmpi::Comm& c) {
      const int me = c.rank();
      const auto xop = make_xop(map, ham::ExchangeCompression::kIsdf, 6.0);
      const la::MatC src_local = dist::scatter_bands(p.phi, bands, me);
      std::vector<real_t> d_local(
          p.d.begin() + static_cast<long>(bands.offset(me)),
          p.d.begin() + static_cast<long>(bands.offset(me) + bands.count(me)));
      outs[static_cast<size_t>(me)] = dist::exchange_apply_distributed_local(
          c, xop, src_local, d_local, src_local, bands,
          dist::ExchangePattern::kAsyncRing);
    });
    for (int r = 0; r < nranks; ++r) {
      const auto& o = outs[static_cast<size_t>(r)];
      ASSERT_EQ(o.cols(), bands.count(r));
      for (size_t b = 0; b < o.cols(); ++b)
        for (size_t i = 0; i < npw; ++i)
          EXPECT_LE(std::abs(o(i, b) - ref(i, bands.offset(r) + b)),
                    1e-8 * scale)
              << "p=" << nranks << " rank " << r;
    }
  }
}

TEST(IsdfDist, SlabGridLayoutIsRejected) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  const size_t nb = 6;
  std::vector<int> threw(4, 0);
  ptmpi::run_ranks(4, 2, [&](ptmpi::Comm& c) {
    ham::Hamiltonian h(*sys.lattice, sys.atoms, *sys.sphere, *sys.wfc_grid,
                       *sys.den_grid, ham::HamiltonianOptions{});
    h.set_exchange_compression(ham::ExchangeCompression::kIsdf);
    dist::BandHamOptions bopt;
    bopt.grid = dist::ProcessGrid{2, 2};
    dist::BandDistributedHamiltonian bdh(c, h, nb, bopt);
    const dist::BlockLayout bands(nb, 2);
    const int br = bopt.grid.band_rank_of(c.rank());
    const la::MatC phi = test::random_orbitals(sys.sphere->npw(), nb, 425);
    const la::MatC src_local = dist::scatter_bands(phi, bands, br);
    const la::MatC sigma = test::random_occupation_matrix(nb, 426);
    try {
      // build_ace routes through the (private) diag exchange entry point.
      (void)bdh.build_ace(src_local, sigma);
    } catch (const Error&) {
      threw[static_cast<size_t>(c.rank())] = 1;
    }
  });
  for (int r = 0; r < 4; ++r) EXPECT_EQ(threw[static_cast<size_t>(r)], 1);
}

// ------------------------------------------------------- routing --------

TEST(Isdf, PackedMatchesSingleJobsBitwise) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const size_t npw = sys.sphere->npw();
  const auto xop = make_xop(map, ham::ExchangeCompression::kIsdf, 6.0);

  const auto p1 = ApplyProblem::make(npw, 6, 431);
  const auto p2 = ApplyProblem::make(npw, 5, 433);
  la::MatC ref1(npw, p1.tgt.cols()), ref2(npw, p2.tgt.cols());
  xop.apply_diag(p1.phi, p1.d, p1.tgt, ref1);
  xop.apply_diag(p2.phi, p2.d, p2.tgt, ref2);

  la::MatC out1(npw, p1.tgt.cols()), out2(npw, p2.tgt.cols());
  std::vector<ham::ExchangeOperator::DiagApplyJob> jobs(2);
  jobs[0] = {&p1.phi, &p1.d, &p1.tgt, &out1};
  jobs[1] = {&p2.phi, &p2.d, &p2.tgt, &out2};
  xop.apply_diag_packed(jobs);

  for (size_t i = 0; i < ref1.size(); ++i)
    EXPECT_EQ(out1.data()[i], ref1.data()[i]);
  for (size_t i = 0; i < ref2.size(); ++i)
    EXPECT_EQ(out2.data()[i], ref2.data()[i]);
}

TEST(Isdf, FftCountIsRankBound) {
  test::TinySystem sys = test::TinySystem::make(3.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const size_t npw = sys.sphere->npw();
  const auto p = ApplyProblem::make(npw, 16, 435);

  // The PT-IM shape: exchange applied onto the full band block, so the
  // dense path pays 2 FFTs per (active source, target) pair while ISDF
  // pays 2 per interpolation vector — independent of the target count.
  const auto dense = make_xop(map, ham::ExchangeCompression::kDense);
  la::MatC out(npw, p.phi.cols());
  dense.fft_count = 0;
  dense.apply_diag(p.phi, p.d, p.phi, out);
  const long dense_ffts = dense.fft_count.load();

  const auto xisdf = make_xop(map, ham::ExchangeCompression::kIsdf, 4.0);
  xisdf.fft_count = 0;
  xisdf.apply_diag(p.phi, p.d, p.phi, out);
  const long isdf_ffts = xisdf.fft_count.load();

  EXPECT_GT(dense_ffts, 0);
  EXPECT_GT(isdf_ffts, 0);
  EXPECT_LE(isdf_ffts * 2, dense_ffts);
}

// ---------------------------------------------------- golden replay -----

TEST(Isdf, GoldenTrajectoryWithinContinuationBound) {
  // Same trajectory as test_golden (PT-IM-ACE, dt=0.5, 10 steps, seeds
  // 641/642) but propagated with ISDF exchange at the default rank factor;
  // the observables must track the dense fixture to 1e-7 — the bound that
  // makes kIsdf a safe hash-neutral continuation of a dense checkpoint.
  constexpr int kSteps = 10;
  constexpr size_t kBands = 6;
  test::TinySystem sys = test::TinySystem::make(3.0);

  td::PtImOptions opt;
  opt.dt = 0.5;
  opt.tol = 1e-8;
  opt.variant = td::PtImVariant::kAce;
  opt.exchange_compression = ham::ExchangeCompression::kIsdf;

  td::TdState s;
  s.phi = test::random_orbitals(sys.sphere->npw(), kBands, 641);
  s.sigma = test::random_occupation_matrix(kBands, 642);

  ham::Hamiltonian obs_h(*sys.lattice, sys.atoms, *sys.sphere, *sys.wfc_grid,
                         *sys.den_grid, ham::HamiltonianOptions{});
  obs_h.set_exchange_mode(ham::ExchangeMode::kExactDiag);

  td::PtImPropagator prop(*sys.ham, opt, nullptr);
  const test::GoldenTrajectory ref = test::golden_load("ptim_ace_10step.txt");
  ASSERT_EQ(ref.steps.size(), static_cast<size_t>(kSteps));
  for (int k = 0; k < kSteps; ++k) {
    prop.step(s);
    const auto rho = ham::density_sigma(s.phi, s.sigma, obs_h.den_map());
    obs_h.set_density(rho);
    const real_t energy = obs_h.energy(s.phi, s.sigma, rho).total();
    const real_t dipole = td::dipole(rho, *sys.den_grid, {1.0, 0.0, 0.0});
    EXPECT_NEAR(energy, ref.steps[static_cast<size_t>(k)].energy, 1e-7)
        << "step " << k;
    EXPECT_NEAR(dipole, ref.steps[static_cast<size_t>(k)].dipole, 1e-7)
        << "step " << k;
  }
}
