// Table I reproduction: MPI communication time per 50-as step for the
// 1536-atom system, ACE (bcast) vs Ring vs Async variants, on both
// platforms (960 ARM nodes / 96 GPU nodes), printed next to the published
// values. A second, measured section verifies the *pattern* byte counts on
// in-process thread ranks (Bcast traffic disappears under the ring), first
// on the standalone exchange kernel and then on the real band-parallel
// PT-IM propagator (per-op CommStats per 4-rank step). A final section
// measures the stream-overlapped pipelined ring (backend subsystem)
// against the serialized path under a synthetic wire model. Everything is
// also written machine-readable to BENCH_table1_comm.json.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <utility>

#include "backend/backend.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "dist/exchange_dist.hpp"
#include "netsim/experiments.hpp"
#include "pw/wavefunction.hpp"

using namespace ptim;

namespace {

struct PaperRow {
  double a2a, sendrecv, wait, allgatherv, allreduce, bcast, total, ratio;
};

void run(const netsim::Platform& plat, size_t nodes, const PaperRow* paper) {
  std::printf("\n%s — 1536 atoms on %zu nodes\n", plat.name.c_str(), nodes);
  std::printf("%-7s %9s %9s %9s %11s %10s %8s %8s %7s\n", "variant",
              "Alltoallv", "Sendrecv", "Wait", "Allgatherv", "Allreduce",
              "Bcast", "total", "ratio");
  const auto rows = netsim::table1_comm(plat, 1536, nodes);
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::printf("%-7s %9.2f %9.2f %9.2f %11.2f %10.2f %8.2f %8.2f %6.1f%%\n",
                netsim::variant_name(r.variant), r.comm.alltoallv,
                r.comm.sendrecv, r.comm.wait, r.comm.allgatherv,
                r.comm.allreduce, r.comm.bcast, r.comm.total(),
                100.0 * r.comm_ratio);
    std::printf("  paper %9.2f %9.2f %9.2f %11.2f %10.2f %8.2f %8.2f %6.1f%%\n",
                paper[i].a2a, paper[i].sendrecv, paper[i].wait,
                paper[i].allgatherv, paper[i].allreduce, paper[i].bcast,
                paper[i].total, paper[i].ratio);
  }
}

}  // namespace

int main() {
  bench::header("Table I — MPI communication time, 1536-atom silicon");

  const PaperRow arm[] = {
      {9.04, 0.0, 0.0, 0.17, 14.19, 67.22, 90.62, 18.92},
      {9.03, 30.1, 0.0, 0.17, 14.21, 0.03, 53.54, 12.73},
      {9.18, 0.0, 20.13, 0.17, 14.18, 0.03, 43.69, 10.65}};
  const PaperRow gpu[] = {
      {7.95, 0.0, 0.0, 0.47, 4.99, 64.85, 78.26, 25.72},
      {7.35, 20.54, 0.0, 0.47, 4.46, 0.89, 33.71, 21.13},
      {7.64, 0.0, 10.1, 0.47, 4.28, 0.82, 23.31, 16.38}};
  run(netsim::Platform::fugaku_arm(), 960, arm);
  run(netsim::Platform::gpu_a100(), 96, gpu);

  // Measured pattern check on thread ranks: the ring eliminates Bcast
  // bytes, and the FP32 exchange policy halves whatever pattern bytes
  // remain (cplxf slabs circulate instead of cplx).
  std::printf("\n[measured] per-rank bytes by MPI op, 4 thread ranks, one "
              "exchange application, FP64 vs FP32 slabs\n");
  bench::MiniSystem sys = bench::MiniSystem::make(8000.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  std::printf("%-10s %-6s", "pattern", "prec");
  for (const char* op : {"Bcast", "Sendrecv", "Wait", "Send", "Recv"})
    std::printf(" %12s", op);
  std::printf("\n");
  for (const auto pat :
       {dist::ExchangePattern::kBcast, dist::ExchangePattern::kRing,
        dist::ExchangePattern::kAsyncRing}) {
    for (const Precision prec : {Precision::kDouble, Precision::kSingle}) {
      ham::ExchangeOptions xopt;
      xopt.precision = prec;
      ham::ExchangeOperator xop{map, xopt};
      ptmpi::run_ranks(4, 2, [&](ptmpi::Comm& c) {
        (void)dist::exchange_apply_distributed(c, xop, sys.ground.phi,
                                               sys.ground.occ, sys.ground.phi,
                                               pat);
      });
      const ptmpi::CommStats st = ptmpi::last_run_stats()[0].snapshot();
      std::printf("%-10s %-6s", prec == Precision::kDouble
                                    ? dist::pattern_name(pat) : "",
                  precision_name(prec));
      for (const char* op : {"Bcast", "Sendrecv", "Wait", "Send", "Recv"}) {
        const auto it = st.ops.find(op);
        std::printf(" %12lld", it == st.ops.end() ? 0LL : it->second.bytes);
      }
      std::printf("\n");
    }
  }

  // Measured Table I analogue from the REAL propagator: one full PT-IM-ACE
  // step through td::DistPtImPropagator on 4 thread ranks, per-op stats of
  // rank 0 (calls / bytes / seconds) for each circulation pattern.
  static const char* kOps[] = {"Alltoallv", "Sendrecv", "Wait",
                               "Allgatherv", "Allreduce", "Bcast"};
  std::printf("\n[measured] per-op CommStats of one distributed PT-IM-ACE "
              "step (4 thread ranks, rank 0)\n");
  std::printf("%-10s %-6s", "pattern", "");
  for (const char* op : kOps) std::printf(" %12s", op);
  std::printf("\n");
  for (const auto pat :
       {dist::ExchangePattern::kBcast, dist::ExchangePattern::kRing,
        dist::ExchangePattern::kAsyncRing}) {
    const auto stats = bench::run_distributed_steps(
        sys, td::PtImVariant::kAce, pat, 4, /*steps=*/1);
    const ptmpi::CommStats st = stats[0].snapshot();
    bool first = true;
    auto row = [&](const char* what,
                   const std::function<void(const ptmpi::OpStats&)>& get) {
      std::printf("%-10s %-6s", first ? dist::pattern_name(pat) : "", what);
      first = false;
      for (const char* op : kOps) {
        const auto it = st.ops.find(op);
        if (it == st.ops.end())
          std::printf(" %12s", "-");
        else
          get(it->second);
      }
      std::printf("\n");
    };
    row("calls",
        [](const ptmpi::OpStats& o) { std::printf(" %12ld", o.calls); });
    row("bytes",
        [](const ptmpi::OpStats& o) { std::printf(" %12lld", o.bytes); });
    row("ms", [](const ptmpi::OpStats& o) {
      std::printf(" %12.3f", o.seconds * 1e3);
    });
  }

  // The same real-propagator step with the FP32 exchange policy: the
  // exchange slab bytes (Sendrecv/Wait under rings, Bcast otherwise) drop
  // to ~half while the FP64 Allreduce/Alltoallv columns are untouched —
  // the policy narrows only the exchange payloads.
  std::printf("\n[measured] same step, FP32 exchange pipeline "
              "(opt.exchange_precision = kSingle)\n");
  std::printf("%-10s %-6s", "pattern", "");
  for (const char* op : kOps) std::printf(" %12s", op);
  std::printf("\n");
  for (const auto pat :
       {dist::ExchangePattern::kBcast, dist::ExchangePattern::kRing,
        dist::ExchangePattern::kAsyncRing}) {
    const auto stats = bench::run_distributed_steps(
        sys, td::PtImVariant::kAce, pat, 4, /*steps=*/1, nullptr,
        Precision::kSingle);
    const ptmpi::CommStats st = stats[0].snapshot();
    std::printf("%-10s %-6s", dist::pattern_name(pat), "bytes");
    for (const char* op : kOps) {
      const auto it = st.ops.find(op);
      if (it == st.ops.end())
        std::printf(" %12s", "-");
      else
        std::printf(" %12lld", it->second.bytes);
    }
    std::printf("\n");
  }

  // Γ-point gamma_real circulation: with genuinely REAL orbitals the dist
  // layer votes the whole apply onto real payloads, so the circulating
  // slab bytes (Bcast under kBcast, Sendrecv/Wait under the rings) halve
  // versus the complex pipeline — and compose with the FP32 policy for a
  // 4x total cut. Recorded machine-readable as the "gamma_ring" array.
  struct GammaRow {
    const char* pattern;
    const char* mode;
    long long bcast, sendrecv, wait;
  };
  std::vector<GammaRow> gamma_rows;
  {
    const size_t nb = 6;
    const size_t ng = sys.wfc_grid->size();
    Rng grng(23);
    la::MatC rphi(sys.sphere->npw(), nb);
    std::vector<cplx> field(ng);
    for (size_t b = 0; b < nb; ++b) {
      for (auto& v : field) v = cplx(grng.uniform() - 0.5, 0.0);
      map.to_sphere(field.data(), rphi.col(b));
    }
    pw::orthonormalize_lowdin(rphi);
    const std::vector<real_t> rd(nb, 0.5);
    std::printf("\n[measured] Γ-point real orbitals: complex vs gamma_real "
                "circulation bytes (4 thread ranks, one exchange apply)\n");
    std::printf("%-10s %-12s %12s %12s %12s\n", "pattern", "mode", "Bcast",
                "Sendrecv", "Wait");
    for (const auto pat :
         {dist::ExchangePattern::kBcast, dist::ExchangePattern::kRing,
          dist::ExchangePattern::kAsyncRing}) {
      struct Mode {
        const char* name;
        bool gamma;
        Precision prec;
      };
      for (const Mode& m :
           {Mode{"complex", false, Precision::kDouble},
            Mode{"gamma", true, Precision::kDouble},
            Mode{"gamma+fp32", true, Precision::kSingle}}) {
        ham::ExchangeOptions xopt;
        xopt.gamma_real = m.gamma;
        xopt.precision = m.prec;
        ham::ExchangeOperator xop{map, xopt};
        ptmpi::run_ranks(4, 2, [&](ptmpi::Comm& c) {
          (void)dist::exchange_apply_distributed(c, xop, rphi, rd, rphi, pat);
        });
        const ptmpi::CommStats st = ptmpi::last_run_stats()[0].snapshot();
        auto bytes_of = [&](const char* op) -> long long {
          const auto it = st.ops.find(op);
          return it == st.ops.end() ? 0LL : it->second.bytes;
        };
        const GammaRow row{dist::pattern_name(pat), m.name, bytes_of("Bcast"),
                           bytes_of("Sendrecv"), bytes_of("Wait")};
        std::printf("%-10s %-12s %12lld %12lld %12lld\n",
                    m.gamma == false ? row.pattern : "", row.mode, row.bcast,
                    row.sendrecv, row.wait);
        gamma_rows.push_back(row);
      }
    }
  }

  // 2-D pb x pg sweep at equal total ranks: the grid dimension shrinks the
  // circulating ring payload (z-slab portions instead of whole-grid slabs,
  // a pg-fold cut) and moves the pair FFTs onto the distributed slab
  // engine, whose pencil transposes appear as Alltoallv bytes and whose
  // cost is the slab-FFT column. Written machine-readable through the
  // shared bench schema (BENCH_table1_grid_sweep.json).
  bench::BenchJson sweep_json("table1_grid_sweep");
  std::printf("\n[measured] pb x pg sweep, one exchange application, "
              "4 total ranks (per-rank bytes, rank 0)\n");
  std::printf("%-8s %-10s %12s %12s %12s %12s %12s\n", "pb x pg", "pattern",
              "ring B", "a2a B", "allred B", "slabFFT ms", "apply ms");
  for (const auto pat :
       {dist::ExchangePattern::kBcast, dist::ExchangePattern::kRing,
        dist::ExchangePattern::kAsyncRing}) {
    for (const auto& [pb, pg] :
         {std::pair{4, 1}, std::pair{2, 2}, std::pair{1, 4}}) {
      const bench::GridSweepRow r =
          bench::run_grid_exchange(sys, map, pb, pg, pat);
      std::printf("%dx%-6d %-10s %12lld %12lld %12lld %12.3f %12.3f\n", r.pb,
                  r.pg, dist::pattern_name(pat), r.ring_bytes,
                  r.alltoallv_bytes, r.allreduce_bytes,
                  r.slab_fft_seconds * 1e3, r.apply_seconds * 1e3);
      char cfg[96];
      std::snprintf(cfg, sizeof(cfg), "pb=%d pg=%d pattern=%s", r.pb, r.pg,
                    dist::pattern_name(pat));
      sweep_json.add("ring_bytes", cfg,
                     static_cast<double>(r.apply_seconds), r.ring_bytes);
      sweep_json.add("alltoallv_bytes", cfg, r.slab_fft_seconds,
                     r.alltoallv_bytes);
      sweep_json.add("allreduce_bytes", cfg, 0.0, r.allreduce_bytes);
    }
  }
  sweep_json.write();

  // Serialized vs stream-overlapped pipelined ring (the backend subsystem's
  // double-buffered compute/comm overlap) under a synthetic wire model, so
  // the transfer has real cost to hide — the measured wait-time overlap the
  // paper's Async rows report. Shared protocol: bench::time_exchange_apply
  // (bench_overlap runs the fuller engine sweep).
  std::printf("\n[measured] serialized vs stream-overlapped ring exchange "
              "(4 ranks, synthetic wire)\n");
  struct Overlap {
    const char* engine;
    const char* pattern;
    double serialized_s, step_s;
  };
  std::vector<Overlap> overlaps;
  {
    const int p = 4;
    const double compute_only = bench::time_exchange_apply(
        sys, map, backend::Kind::kSync, dist::ExchangePattern::kRing, p);
    ptmpi::set_wire_model(1.2 * compute_only / (p - 1), 0.0);
    // Baseline: the serialized Sendrecv ring; the stream-pipelined engines
    // hide the wire wait behind the previous slab's compute.
    const double serialized = bench::time_exchange_apply(
        sys, map, backend::Kind::kSync, dist::ExchangePattern::kRing, p);
    std::printf("%-20s %-8s %12s %10s\n", "engine", "pattern", "step",
                "vs serial");
    std::printf("%-20s %-8s %10.2fms %9.2fx\n", "serialized", "ring",
                serialized * 1e3, 1.0);
    overlaps.push_back({"serialized", "ring", serialized, serialized});
    for (const auto pat :
         {dist::ExchangePattern::kRing, dist::ExchangePattern::kAsyncRing}) {
      const double t = bench::time_exchange_apply(
          sys, map, backend::Kind::kHostAsync, pat, p);
      std::printf("%-20s %-8s %10.2fms %9.2fx\n", "stream-overlapped",
                  dist::pattern_name(pat), t * 1e3, serialized / t);
      overlaps.push_back(
          {"stream-overlapped", dist::pattern_name(pat), serialized, t});
    }
    ptmpi::set_wire_model(0.0, 0.0);
  }

  // Machine-readable dump: modeled Table I rows + measured overlap timing.
  const char* path = "BENCH_table1_comm.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f, "{\n  \"model\": [\n");
    struct Plat {
      netsim::Platform plat;
      size_t nodes;
    };
    const Plat plats[] = {{netsim::Platform::fugaku_arm(), 960},
                          {netsim::Platform::gpu_a100(), 96}};
    for (size_t pi = 0; pi < 2; ++pi) {
      const auto rows = netsim::table1_comm(plats[pi].plat, 1536,
                                            plats[pi].nodes);
      for (size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        std::fprintf(
            f,
            "    {\"platform\": \"%s\", \"nodes\": %zu, \"variant\": "
            "\"%s\", \"alltoallv\": %.3f, \"sendrecv\": %.3f, \"wait\": "
            "%.3f, \"allgatherv\": %.3f, \"allreduce\": %.3f, \"bcast\": "
            "%.3f, \"total\": %.3f, \"comm_ratio\": %.4f}%s\n",
            plats[pi].plat.name.c_str(), plats[pi].nodes,
            netsim::variant_name(r.variant), r.comm.alltoallv,
            r.comm.sendrecv, r.comm.wait, r.comm.allgatherv, r.comm.allreduce,
            r.comm.bcast, r.comm.total(), r.comm_ratio,
            (pi == 1 && i + 1 == rows.size()) ? "" : ",");
      }
    }
    std::fprintf(f, "  ],\n  \"overlap\": [\n");
    for (size_t i = 0; i < overlaps.size(); ++i) {
      const auto& o = overlaps[i];
      std::fprintf(f,
                   "    {\"engine\": \"%s\", \"pattern\": \"%s\", "
                   "\"step_seconds\": %.6e, "
                   "\"serialized_baseline_seconds\": %.6e, "
                   "\"speedup_vs_serialized\": %.4f, "
                   "\"wait_hidden_seconds\": %.6e}%s\n",
                   o.engine, o.pattern, o.step_s, o.serialized_s,
                   o.serialized_s / o.step_s,
                   std::max(0.0, o.serialized_s - o.step_s),
                   i + 1 < overlaps.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"gamma_ring\": [\n");
    for (size_t i = 0; i < gamma_rows.size(); ++i) {
      const auto& g = gamma_rows[i];
      std::fprintf(f,
                   "    {\"pattern\": \"%s\", \"mode\": \"%s\", "
                   "\"bcast_bytes\": %lld, \"sendrecv_bytes\": %lld, "
                   "\"wait_bytes\": %lld}%s\n",
                   g.pattern, g.mode, g.bcast, g.sendrecv, g.wait,
                   i + 1 < gamma_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("(written to %s)\n", path);
  }
  return 0;
}
