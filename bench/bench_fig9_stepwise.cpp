// Fig. 9 reproduction: step-by-step performance improvement
// BL -> Diag -> ACE -> Ring -> Async.
//
// Two complementary reproductions:
//  1. MEASURED on this host: wall-clock per PT-IM step of the real solver
//     in each algorithmic variant on a miniature system (plus measured
//     FFT-count reduction — the root cause of the Diag speedup), and the
//     Bcast/Ring/Async patterns timed over in-process thread ranks.
//  2. MODELED at paper scale: netsim projection for the 384-atom system on
//     240 ARM / 24 GPU nodes, printed against the published factors.

#include <cmath>
#include <cstdio>
#include <vector>

#include "backend/backend.hpp"
#include "bench_common.hpp"
#include "common/timer.hpp"
#include "core/simulation.hpp"
#include "dist/exchange_dist.hpp"
#include "netsim/experiments.hpp"

using namespace ptim;
using bench::MiniSystem;

int main() {
  bench::header("Fig. 9 — step-by-step improvement (BL/Diag/ACE/Ring/Async)");

  // ---------------------------------------------------- measured part ----
  std::printf("\n[measured] one PT-IM step per variant (2-atom mini system,"
              " this host)\n");
  MiniSystem sys = MiniSystem::make(8000.0);
  std::printf("%-10s %12s %12s %14s %12s\n", "variant", "seconds",
              "vs BL", "Vx FFT count", "SCF iters");

  struct MeasuredRow {
    const char* name;
    double seconds;
    long ffts;
    int scf_iters;
  };
  std::vector<MeasuredRow> measured;
  double t_bl = 0.0;
  for (const auto variant :
       {td::PtImVariant::kBaseline, td::PtImVariant::kDiag,
        td::PtImVariant::kAce}) {
    td::TdState s = sys.initial();
    td::PtImOptions opt;
    opt.dt = 1.0;
    opt.tol = 1e-7;
    opt.variant = variant;
    td::PtImPropagator prop(*sys.ham, opt, nullptr);
    sys.ham->exchange_op().fft_count = 0;
    Timer timer;
    const auto stats = prop.step(s);
    const double secs = timer.seconds();
    if (variant == td::PtImVariant::kBaseline) t_bl = secs;
    const char* name = variant == td::PtImVariant::kBaseline ? "BL"
                       : variant == td::PtImVariant::kDiag   ? "Diag"
                                                             : "ACE";
    std::printf("%-10s %12.3f %12.2fx %14ld %12d\n", name, secs, t_bl / secs,
                sys.ham->exchange_op().fft_count.load(),
                stats.scf_iterations);
    measured.push_back({name, secs, sys.ham->exchange_op().fft_count.load(),
                        stats.scf_iterations});
  }

  // Communication patterns over 4 in-process ranks.
  std::printf("\n[measured] exchange circulation patterns, 4 thread ranks\n");
  {
    pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
    ham::ExchangeOperator xop{map, {}};
    const la::MatC& src = sys.ground.phi;
    const std::vector<real_t>& d = sys.ground.occ;
    std::printf("%-10s %12s %16s\n", "pattern", "seconds", "bytes moved/rank");
    for (const auto pat :
         {dist::ExchangePattern::kBcast, dist::ExchangePattern::kRing,
          dist::ExchangePattern::kAsyncRing}) {
      Timer timer;
      ptmpi::run_ranks(4, 2, [&](ptmpi::Comm& c) {
        (void)dist::exchange_apply_distributed(c, xop, src, d, src, pat);
      });
      long long bytes = 0;
      for (const auto& [op, st] : ptmpi::last_run_stats()[0].snapshot().ops)
        bytes += st.bytes;
      std::printf("%-10s %12.3f %16lld\n", dist::pattern_name(pat),
                  timer.seconds(), bytes);
    }
  }

  // Band-parallel production path: a full distributed PT-IM-ACE step per
  // circulation pattern, wall-clock next to the measured per-rank comm time
  // (the step-level analogue of the Ring -> Async rows of Fig. 9).
  std::printf("\n[measured] distributed PT-IM-ACE step, 4 thread ranks\n");
  std::printf("%-10s %12s %14s %16s\n", "pattern", "seconds", "comm s (r0)",
              "bytes moved/rank");
  for (const auto pat :
       {dist::ExchangePattern::kBcast, dist::ExchangePattern::kRing,
        dist::ExchangePattern::kAsyncRing}) {
    double step_seconds = 0.0;
    const auto stats = bench::run_distributed_steps(
        sys, td::PtImVariant::kAce, pat, 4, /*steps=*/1, &step_seconds);
    long long bytes = 0;
    for (const auto& [op, st] : stats[0].snapshot().ops) bytes += st.bytes;
    std::printf("%-10s %12.3f %14.4f %16lld\n", dist::pattern_name(pat),
                step_seconds, stats[0].total_seconds(), bytes);
  }

  // ------------------------------------------------------ traced part ----
  // The same 4-rank async-ring step again, but through Simulation::run with
  // tracing and metrics on, and the wire model giving every transfer a
  // measurable cost. Produces the artifacts the CI observability gate
  // checks: TRACE_fig9_stepwise.json (one merged Chrome trace with
  // per-rank compute/comm lanes — scripts/trace_validate.py verifies
  // nesting and a nonzero comm/compute overlap fraction) and
  // METRICS_fig9_stepwise.jsonl (per-rank StepReport rows whose
  // deterministic columns bench_compare.py gates against the baseline).
  std::printf("\n[traced] distributed PT-IM-ACE steps, 4 thread ranks,"
              " async ring + wire model\n");
  {
    core::SystemSpec spec;
    spec.ecut = 2.0;
    spec.temperature_k = 8000.0;
    spec.scf.tol_rho = 1e-6;
    core::Simulation sim(spec);
    sim.prepare_ground_state();

    core::RunConfig cfg;
    cfg.steps = 2;
    cfg.dt = 1.0;
    cfg.tol = 1e-7;
    cfg.variant = td::PtImVariant::kAce;
    cfg.nranks = 4;
    cfg.ranks_per_node = 2;
    cfg.pattern = dist::ExchangePattern::kAsyncRing;
    cfg.backend = backend::Kind::kHostAsync;
    cfg.trace_path = "TRACE_fig9_stepwise.json";
    cfg.metrics_path = "METRICS_fig9_stepwise.jsonl";
    std::remove(cfg.metrics_path.c_str());  // the sink appends

    ptmpi::set_wire_model(2e-5, 1e-9);  // 20 us latency, ~1 GB/s
    Timer timer;
    (void)sim.run(cfg);
    const double secs = timer.seconds();
    ptmpi::set_wire_model(0.0, 0.0);
    std::printf("%d traced steps in %.3f s -> %s, %s\n", cfg.steps, secs,
                cfg.trace_path.c_str(), cfg.metrics_path.c_str());
  }

  // ----------------------------------------------------- modeled part ----
  struct PaperRow {
    const char* name;
    double vs_prev;
  };
  const PaperRow paper_arm[] = {
      {"BL", 1.0}, {"Diag", 12.86}, {"ACE", 3.3}, {"Ring", 1.13},
      {"Async", 1.14}};
  const PaperRow paper_gpu[] = {
      {"BL", 1.0}, {"Diag", 7.57}, {"ACE", 3.6}, {"Ring", 1.23},
      {"Async", 1.23}};

  auto print_model = [](const netsim::Platform& plat, size_t nodes,
                        const PaperRow* paper, double paper_total) {
    std::printf("\n[model] 384-atom Si on %zu nodes — %s\n", nodes,
                plat.name.c_str());
    std::printf("%-8s %14s %12s %12s %14s\n", "variant", "step (s)",
                "vs prev", "paper", "vs BL (model)");
    const auto rows = netsim::fig9_stepwise(plat, 384, nodes);
    for (size_t i = 0; i < rows.size(); ++i)
      std::printf("%-8s %14.2f %11.2fx %11.2fx %13.2fx\n",
                  netsim::variant_name(rows[i].variant),
                  rows[i].step_seconds, rows[i].speedup_vs_prev,
                  paper[i].vs_prev, rows[i].speedup_vs_baseline);
    std::printf("overall: model %.1fx vs paper %.1fx\n",
                rows.back().speedup_vs_baseline, paper_total);
  };
  print_model(netsim::Platform::fugaku_arm(), 240, paper_arm, 55.15);
  print_model(netsim::Platform::gpu_a100(), 24, paper_gpu, 41.44);

  // Machine-readable dump for the perf trajectory: measured per-variant
  // step costs on this host plus the modeled paper-scale ladder.
  const char* path = "BENCH_fig9_stepwise.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f, "{\n  \"measured_step\": [\n");
    for (size_t i = 0; i < measured.size(); ++i)
      std::fprintf(f,
                   "    {\"variant\": \"%s\", \"seconds\": %.6e, "
                   "\"speedup_vs_bl\": %.4f, \"vx_fft_count\": %ld, "
                   "\"scf_iterations\": %d}%s\n",
                   measured[i].name, measured[i].seconds,
                   measured[0].seconds / measured[i].seconds,
                   measured[i].ffts, measured[i].scf_iters,
                   i + 1 < measured.size() ? "," : "");
    std::fprintf(f, "  ],\n  \"model\": [\n");
    struct Plat {
      netsim::Platform plat;
      size_t nodes;
    };
    const Plat plats[] = {{netsim::Platform::fugaku_arm(), 240},
                          {netsim::Platform::gpu_a100(), 24}};
    for (size_t pi = 0; pi < 2; ++pi) {
      const auto rows = netsim::fig9_stepwise(plats[pi].plat, 384,
                                              plats[pi].nodes);
      for (size_t i = 0; i < rows.size(); ++i)
        std::fprintf(f,
                     "    {\"platform\": \"%s\", \"nodes\": %zu, "
                     "\"variant\": \"%s\", \"step_seconds\": %.4f, "
                     "\"speedup_vs_prev\": %.4f, "
                     "\"speedup_vs_baseline\": %.4f}%s\n",
                     plats[pi].plat.name.c_str(), plats[pi].nodes,
                     netsim::variant_name(rows[i].variant),
                     rows[i].step_seconds, rows[i].speedup_vs_prev,
                     rows[i].speedup_vs_baseline,
                     (pi == 1 && i + 1 == rows.size()) ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("(written to %s)\n", path);
  }
  return 0;
}
