// Fig. 8 reproduction: evolution of the occupation-number matrix sigma(t)
// under laser irradiation at finite temperature —
//  (a) trajectory of the off-diagonal element sigma(0,2) in the complex
//      plane ("stochastic nature of electron motion"),
//  (b) a diagonal element rising while the field strengthens,
//  (c/d) initial and final sigma matrices (diagonal Fermi-Dirac at t=0,
//      off-diagonal structure after the pulse).

#include <cmath>

#include "bench_common.hpp"

using namespace ptim;
using bench::MiniSystem;

namespace {

void print_sigma(const la::MatC& s, const char* title) {
  std::printf("\n%s (|sigma_ij|):\n", title);
  for (size_t i = 0; i < s.rows(); ++i) {
    std::printf("  ");
    for (size_t j = 0; j < s.cols(); ++j)
      std::printf("%7.4f ", std::abs(s(i, j)));
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::header("Fig. 8 — states evolution of sigma(t) under a laser pulse");

  MiniSystem sys = MiniSystem::make(/*T=*/8000.0);
  td::TdState s = sys.initial();
  print_sigma(s.sigma, "(c) initial sigma_t — diagonal Fermi-Dirac");
  std::printf("\ninitial occupations f_i:");
  for (size_t i = 0; i < s.sigma.rows(); ++i)
    std::printf(" %.4f", std::real(s.sigma(i, i)));
  std::printf("\n");

  const real_t dt = 1.0;
  const int steps = 16;
  td::LaserParams lp;
  lp.e0 = 0.03;
  lp.wavelength_nm = 380.0;
  td::LaserPulse laser(lp, dt * steps);

  td::PtImOptions opt;
  opt.dt = dt;
  opt.tol = 1e-8;
  opt.variant = td::PtImVariant::kAce;
  td::PtImPropagator prop(*sys.ham, opt, &laser);

  const size_t kdiag = 2;  // tracked diagonal element (paper uses (22,22))
  std::printf("\n(a,b) element trajectories:\n");
  std::printf("%8s %12s %14s %14s %14s %12s\n", "t (au)", "|E(t)|",
              "Re s(0,2)", "Im s(0,2)", "s(2,2)", "tr sigma");
  std::printf("%8.2f %12.4e %14.6e %14.6e %14.8f %12.8f\n", 0.0, 0.0,
              std::real(s.sigma(0, 2)), std::imag(s.sigma(0, 2)),
              std::real(s.sigma(kdiag, kdiag)), td::sigma_trace(s.sigma));
  bench::BenchJson json("fig8_sigma");
  for (int i = 0; i < steps; ++i) {
    Timer t;
    prop.step(s);
    std::printf("%8.2f %12.4e %14.6e %14.6e %14.8f %12.8f\n", s.time,
                std::abs(laser.efield(s.time)), std::real(s.sigma(0, 2)),
                std::imag(s.sigma(0, 2)),
                std::real(s.sigma(kdiag, kdiag)), td::sigma_trace(s.sigma));
    char cfg[64];
    std::snprintf(cfg, sizeof(cfg), "step=%d t=%.2f trace=%.8f", i + 1,
                  s.time, td::sigma_trace(s.sigma));
    json.add("ptim_ace_step", cfg, t.seconds());
  }
  json.write();

  print_sigma(s.sigma, "(d) final sigma_t — off-diagonal weight developed");
  std::printf(
      "\npaper claims reproduced: off-diagonal sigma(0,2) wanders in the\n"
      "complex plane; diagonal occupations stir while the field is on;\n"
      "tr(sigma) is conserved; sigma starts diagonal and ends mixed.\n");
  std::printf("idempotency defect ||s^2-s||_F: initial mixed state %.4f\n",
              td::sigma_idempotency_defect(s.sigma));
  return 0;
}
