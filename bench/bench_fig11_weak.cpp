// Fig. 11 reproduction: weak scaling.
//  (a) ARM, 48 -> 1536 atoms, nodes = orbitals/4 (1 orbital per rank)
//  (b) GPU, 48 -> 3072 atoms, nodes = orbitals/40 (10 orbitals per rank)
// Published anchors: 11.40 s/step at 192 atoms on 12 GPU nodes and
// 429.3 s/step at 3072 atoms on 192 GPU nodes; early size doublings cost
// much less than the theoretical fourfold, later ones approach it.

#include <cstdio>

#include "bench_common.hpp"
#include "netsim/experiments.hpp"

using namespace ptim;

namespace {

void run(const netsim::Platform& plat, const std::vector<size_t>& atoms,
         size_t orb_per_rank, bench::BenchJson& json) {
  std::printf("\n%s — nodes = orbitals/%zu\n", plat.name.c_str(),
              orb_per_rank * static_cast<size_t>(plat.ranks_per_node));
  std::printf("%8s %8s %14s %16s %12s\n", "atoms", "nodes", "t/step (s)",
              "ideal O(N^2)", "growth");
  const auto rows = netsim::fig11_weak(plat, atoms, orb_per_rank);
  for (size_t i = 0; i < rows.size(); ++i) {
    const double growth =
        i == 0 ? 1.0 : rows[i].step_seconds / rows[i - 1].step_seconds;
    std::printf("%8zu %8zu %14.2f %16.2f %11.2fx\n", rows[i].natoms,
                rows[i].nodes, rows[i].step_seconds, rows[i].ideal_n2_seconds,
                growth);
    char cfg[96];
    std::snprintf(cfg, sizeof(cfg), "%s natoms=%zu nodes=%zu orb_per_rank=%zu",
                  plat.name.c_str(), rows[i].natoms, rows[i].nodes,
                  orb_per_rank);
    json.add("model_step", cfg, rows[i].step_seconds);
    json.add("ideal_n2", cfg, rows[i].ideal_n2_seconds);
  }
}

}  // namespace

int main() {
  bench::header("Fig. 11 — weak scaling (wall-clock per 50-as step)");
  bench::BenchJson json("fig11_weak");
  run(netsim::Platform::fugaku_arm(), {48, 96, 192, 384, 768, 1536}, 1, json);
  run(netsim::Platform::gpu_a100(), {48, 96, 192, 384, 768, 1536, 3072}, 10,
      json);
  json.write();

  const auto rows = netsim::fig11_weak(netsim::Platform::gpu_a100(),
                                       {192, 3072}, 10);
  std::printf("\nGPU anchors: model %.1f s @192 atoms (paper 11.40 s); "
              "model %.1f s @3072 atoms (paper 429.3 s)\n",
              rows[0].step_seconds, rows[1].step_seconds);
  std::printf("paper trend reproduced: doubling cost rises toward the "
              "theoretical 4x as the Fock term dominates\n");
  return 0;
}
