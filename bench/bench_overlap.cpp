// Overlap pipeline benchmark: serialized (kSync) vs stream-overlapped
// (HostAsync double-buffered ring) distributed exchange, measured on
// in-process thread ranks with a synthetic wire model so the transfer time
// is non-trivial — the one-machine analogue of the paper's Async rows.
//
// Per circulation round the serialized ring pays compute + wire while the
// pipelined ring pays ~max(compute, wire); the difference is the measured
// wait-time reduction. Results (and the per-op CommStats wait seconds)
// are written to BENCH_overlap.json for the perf trajectory. The shared
// measurement protocol lives in bench::time_exchange_apply.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "backend/backend.hpp"
#include "bench_common.hpp"
#include "dist/exchange_dist.hpp"

using namespace ptim;

int main() {
  bench::header(
      "Overlap pipeline — serialized vs stream-overlapped ring exchange");

  bench::MiniSystem sys = bench::MiniSystem::make(8000.0);
  pw::SphereGridMap map{*sys.sphere, *sys.wfc_grid};
  const int p = 4;

  // Compute-only reference (no wire): what a circulation costs with free
  // comm.
  const double compute_only = bench::time_exchange_apply(
      sys, map, backend::Kind::kSync, dist::ExchangePattern::kRing, p);
  // Wire time per slab chosen relative to the compute so the overlap has
  // something real to hide: roughly one circulation's worth of compute in
  // pure transfer (the comm-bound regime of the paper's large runs, where
  // the Async rows earn their keep).
  const double wire_per_msg = 1.2 * compute_only / (p - 1);
  ptmpi::set_wire_model(wire_per_msg, 0.0);
  std::printf("\n%d thread ranks; wire model: %.2f ms per message "
              "(compute-only circulation: %.2f ms)\n",
              p, wire_per_msg * 1e3, compute_only * 1e3);

  // Baseline: the fully serialized Sendrecv ring (transfer stalls the hot
  // path every round). Every overlapped engine is measured against it:
  //  * host-overlapped  — the legacy kAsyncRing (Isend/Irecv posted before
  //    the apply, waits after),
  //  * stream-overlapped — the backend pipeline (comm rounds as tasks on a
  //    comm stream, double-buffered, waits posted as stream events).
  struct Config {
    const char* engine;
    const char* pattern;
    dist::ExchangePattern pat;
    backend::Kind kind;
  };
  const Config configs[] = {
      {"serialized", "ring", dist::ExchangePattern::kRing,
       backend::Kind::kSync},
      {"host-overlapped", "async", dist::ExchangePattern::kAsyncRing,
       backend::Kind::kSync},
      {"stream-overlapped", "ring", dist::ExchangePattern::kRing,
       backend::Kind::kHostAsync},
      {"stream-overlapped", "async", dist::ExchangePattern::kAsyncRing,
       backend::Kind::kHostAsync},
  };
  struct Row {
    const Config* cfg;
    double step_s, comm_s;
  };
  std::printf("\n%-20s %-8s %12s %10s %12s\n", "engine", "pattern", "step",
              "vs serial", "comm s (r0)");
  std::vector<Row> rows;
  double base_s = 0.0;
  for (const Config& cfg : configs) {
    Row r{&cfg, 0.0, 0.0};
    r.step_s = bench::time_exchange_apply(sys, map, cfg.kind, cfg.pat, p,
                                          /*reps=*/3, &r.comm_s);
    if (base_s == 0.0) base_s = r.step_s;
    std::printf("%-20s %-8s %10.2fms %9.2fx %10.2fms\n", cfg.engine,
                cfg.pattern, r.step_s * 1e3, base_s / r.step_s,
                r.comm_s * 1e3);
    rows.push_back(r);
  }
  ptmpi::set_wire_model(0.0, 0.0);
  std::printf(
      "(comm s = rank 0 Sendrecv + Wait + Bcast seconds. Under the "
      "overlapped engines the wire wait runs concurrently with the "
      "previous slab's compute — off the critical path — which is what "
      "the vs-serial column measures; on a single-core host only the "
      "wait, not the compute, can be hidden.)\n");

  const char* path = "BENCH_overlap.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f,
                 "{\n  \"ranks\": %d,\n  \"wire_seconds_per_message\": %.6e,"
                 "\n  \"compute_only_circulation_seconds\": %.6e,\n"
                 "  \"overlap\": [\n",
                 p, wire_per_msg, compute_only);
    for (size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      std::fprintf(
          f,
          "    {\"engine\": \"%s\", \"pattern\": \"%s\", "
          "\"step_seconds\": %.6e, \"serialized_baseline_seconds\": %.6e, "
          "\"speedup_vs_serialized\": %.4f, "
          "\"wait_hidden_seconds\": %.6e, \"comm_seconds\": %.6e}%s\n",
          r.cfg->engine, r.cfg->pattern, r.step_s, base_s, base_s / r.step_s,
          std::max(0.0, base_s - r.step_s), r.comm_s,
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("(written to %s)\n", path);
  }
  return 0;
}
