// Fig. 7 reproduction: accuracy of PT-IM-ACE with a large (50 as class)
// time step against RK4 with a far smaller step, for (a) the laser field,
// (b/c) dipole and total energy in PURE states, (d/e) the same in MIXED
// (finite-temperature) states.
//
// Paper setup: 8-atom Si, 380 nm pulse, 30 fs, dt = 50 as vs RK4 at 0.5 as.
// Here: 2-atom Si-like cell, 380 nm pulse over a short window, PT-IM-ACE
// dt = 1 a.u. vs RK4 dt = 0.04 a.u. (25x smaller) — the paper's claim is
// the *agreement* between the two propagators, which is scale-free.

#include <cmath>
#include <vector>

#include "bench_common.hpp"

using namespace ptim;
using bench::MiniSystem;

namespace {

struct Series {
  std::vector<real_t> t, dipole, energy;
};

Series run_ptim(MiniSystem& sys, const td::LaserPulse& laser, real_t dt,
                int steps) {
  td::TdState s = sys.initial();
  td::PtImOptions opt;
  opt.dt = dt;
  opt.tol = 1e-9;
  opt.variant = td::PtImVariant::kAce;
  opt.tol_fock = 1e-10;
  td::PtImPropagator prop(*sys.ham, opt, &laser);
  Series out;
  for (int i = 0; i < steps; ++i) {
    prop.step(s);
    out.t.push_back(s.time);
    out.dipole.push_back(sys.dipole_x(s));
    out.energy.push_back(sys.energy(s));
  }
  return out;
}

Series run_rk4(MiniSystem& sys, const td::LaserPulse& laser, real_t dt_big,
               int steps, int substeps) {
  td::TdState s = sys.initial();
  td::Rk4Options opt;
  opt.dt = dt_big / substeps;
  td::Rk4Propagator prop(*sys.ham, opt, &laser);
  Series out;
  for (int i = 0; i < steps; ++i) {
    for (int k = 0; k < substeps; ++k) prop.step(s);
    out.t.push_back(s.time);
    out.dipole.push_back(sys.dipole_x(s));
    out.energy.push_back(sys.energy(s));
  }
  return out;
}

void compare(const char* label, MiniSystem& sys) {
  const real_t dt = 1.0;       // PT-IM step (50-as class in a.u. terms)
  const int steps = 8;
  const int substeps = 25;     // RK4 runs 25x finer
  const real_t t_total = dt * steps;

  td::LaserParams lp;
  lp.e0 = 0.02;
  lp.wavelength_nm = 380.0;
  td::LaserPulse laser(lp, t_total);

  std::printf("\n-- %s --\n", label);
  std::printf("%8s %14s %14s %14s %14s %12s\n", "t (au)", "E(t) a.u.",
              "dip PT-IM-ACE", "dip RK4", "E PT-IM-ACE", "E RK4");
  const Series pt = run_ptim(sys, laser, dt, steps);
  const Series rk = run_rk4(sys, laser, dt, steps, substeps);

  real_t max_dip_err = 0.0, max_e_err = 0.0, dip_amp = 0.0;
  for (int i = 0; i < steps; ++i) {
    std::printf("%8.2f %14.6e %14.6e %14.6e %14.8f %12.8f\n", pt.t[i],
                laser.efield(pt.t[i]), pt.dipole[i], rk.dipole[i],
                pt.energy[i], rk.energy[i]);
    max_dip_err = std::max(max_dip_err, std::abs(pt.dipole[i] - rk.dipole[i]));
    max_e_err = std::max(max_e_err, std::abs(pt.energy[i] - rk.energy[i]));
    dip_amp = std::max(dip_amp, std::abs(rk.dipole[i]));
  }
  std::printf("max |dipole diff| = %.3e  (signal amplitude %.3e, rel %.2f%%)\n",
              max_dip_err, dip_amp, 100.0 * max_dip_err / dip_amp);
  std::printf("max |energy diff| = %.3e Ha\n", max_e_err);
  std::printf("paper claim: PT-IM-ACE at 50 as fully matches RK4 at 0.5 as "
              "(pure and mixed states)\n");
}

}  // namespace

int main() {
  bench::header(
      "Fig. 7 — PT-IM-ACE (large step) vs RK4 (25x smaller step):\n"
      "dipole moment along x and total energy, pure and mixed states");

  {
    MiniSystem pure = MiniSystem::make(/*T=*/0.0);
    compare("pure states (T = 0)", pure);
  }
  {
    MiniSystem mixed = MiniSystem::make(/*T=*/8000.0);
    compare("mixed states (T = 8000 K, fractional occupations)", mixed);
  }
  return 0;
}
