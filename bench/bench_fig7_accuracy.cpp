// Fig. 7 reproduction: accuracy of PT-IM-ACE with a large (50 as class)
// time step against RK4 with a far smaller step, for (a) the laser field,
// (b/c) dipole and total energy in PURE states, (d/e) the same in MIXED
// (finite-temperature) states.
//
// Paper setup: 8-atom Si, 380 nm pulse, 30 fs, dt = 50 as vs RK4 at 0.5 as.
// Here: 2-atom Si-like cell, 380 nm pulse over a short window, PT-IM-ACE
// dt = 1 a.u. vs RK4 dt = 0.04 a.u. (25x smaller) — the paper's claim is
// the *agreement* between the two propagators, which is scale-free.

#include <cmath>
#include <vector>

#include "bench_common.hpp"

using namespace ptim;
using bench::MiniSystem;

namespace {

struct Series {
  std::vector<real_t> t, dipole, energy;
};

Series run_ptim(MiniSystem& sys, const td::LaserPulse& laser, real_t dt,
                int steps) {
  td::TdState s = sys.initial();
  td::PtImOptions opt;
  opt.dt = dt;
  opt.tol = 1e-9;
  opt.variant = td::PtImVariant::kAce;
  opt.tol_fock = 1e-10;
  td::PtImPropagator prop(*sys.ham, opt, &laser);
  Series out;
  for (int i = 0; i < steps; ++i) {
    prop.step(s);
    out.t.push_back(s.time);
    out.dipole.push_back(sys.dipole_x(s));
    out.energy.push_back(sys.energy(s));
  }
  return out;
}

Series run_rk4(MiniSystem& sys, const td::LaserPulse& laser, real_t dt_big,
               int steps, int substeps) {
  td::TdState s = sys.initial();
  td::Rk4Options opt;
  opt.dt = dt_big / substeps;
  td::Rk4Propagator prop(*sys.ham, opt, &laser);
  Series out;
  for (int i = 0; i < steps; ++i) {
    for (int k = 0; k < substeps; ++k) prop.step(s);
    out.t.push_back(s.time);
    out.dipole.push_back(sys.dipole_x(s));
    out.energy.push_back(sys.energy(s));
  }
  return out;
}

void compare(const char* label, MiniSystem& sys) {
  const real_t dt = 1.0;       // PT-IM step (50-as class in a.u. terms)
  const int steps = 8;
  const int substeps = 25;     // RK4 runs 25x finer
  const real_t t_total = dt * steps;

  td::LaserParams lp;
  lp.e0 = 0.02;
  lp.wavelength_nm = 380.0;
  td::LaserPulse laser(lp, t_total);

  std::printf("\n-- %s --\n", label);
  std::printf("%8s %14s %14s %14s %14s %12s\n", "t (au)", "E(t) a.u.",
              "dip PT-IM-ACE", "dip RK4", "E PT-IM-ACE", "E RK4");
  const Series pt = run_ptim(sys, laser, dt, steps);
  const Series rk = run_rk4(sys, laser, dt, steps, substeps);

  real_t max_dip_err = 0.0, max_e_err = 0.0, dip_amp = 0.0;
  for (int i = 0; i < steps; ++i) {
    std::printf("%8.2f %14.6e %14.6e %14.6e %14.8f %12.8f\n", pt.t[i],
                laser.efield(pt.t[i]), pt.dipole[i], rk.dipole[i],
                pt.energy[i], rk.energy[i]);
    max_dip_err = std::max(max_dip_err, std::abs(pt.dipole[i] - rk.dipole[i]));
    max_e_err = std::max(max_e_err, std::abs(pt.energy[i] - rk.energy[i]));
    dip_amp = std::max(dip_amp, std::abs(rk.dipole[i]));
  }
  std::printf("max |dipole diff| = %.3e  (signal amplitude %.3e, rel %.2f%%)\n",
              max_dip_err, dip_amp, 100.0 * max_dip_err / dip_amp);
  std::printf("max |energy diff| = %.3e Ha\n", max_e_err);
  std::printf("paper claim: PT-IM-ACE at 50 as fully matches RK4 at 0.5 as "
              "(pure and mixed states)\n");
}

// Precision sweep: the same 10-step PT-IM-ACE trajectory with the exchange
// pipeline at every Precision mode. Energies and dipoles of every run are
// measured with the FP64 operator so the columns isolate trajectory drift;
// wall time and FFT counts are the in-mode hot-path numbers. Results land
// in BENCH_exchange_precision.json for the perf/accuracy trajectory.
void precision_sweep(MiniSystem& sys) {
  const int steps = 10;
  const real_t dt = 1.0;

  struct Run {
    Precision p;
    double seconds = 0.0;
    long ffts = 0;
    std::vector<real_t> dipole, energy;
  };
  std::vector<Run> runs;
  for (const Precision p : {Precision::kDouble, Precision::kSingle,
                            Precision::kSingleCompensated}) {
    Run run;
    run.p = p;
    sys.ham->set_exchange_precision(p);
    td::TdState s = sys.initial();
    td::PtImOptions opt;
    opt.dt = dt;
    opt.variant = td::PtImVariant::kAce;
    // Production tolerances (paper defaults). Note: tol_fock must sit above
    // the FP32 noise floor (~1e-7 relative) or the ACE outer loop runs to
    // its cap chasing noise — the README's "when to pick each mode" rule.
    opt.tol = 1e-6;
    opt.tol_fock = 1e-6;
    td::PtImPropagator prop(*sys.ham, opt, nullptr);
    for (int i = 0; i < steps; ++i) {
      // Wall clock and FFT count cover the steps only, not the FP64
      // measurement of the observables.
      const long f0 = sys.ham->exchange_op().fft_count;
      Timer t;
      prop.step(s);
      run.seconds += t.seconds();
      run.ffts += sys.ham->exchange_op().fft_count - f0;
      sys.ham->set_exchange_precision(Precision::kDouble);
      run.dipole.push_back(sys.dipole_x(s));
      run.energy.push_back(sys.energy(s));
      sys.ham->set_exchange_precision(p);
    }
    runs.push_back(std::move(run));
  }
  sys.ham->set_exchange_precision(Precision::kDouble);

  std::printf("\n-- precision sweep: 10-step PT-IM-ACE, exchange pipeline "
              "per mode --\n");
  std::printf("%10s %12s %8s %14s %16s\n", "precision", "seconds", "FFTs",
              "max |dE| Ha", "dipole drift");
  const Run& ref = runs[0];
  struct Row {
    Precision p;
    double seconds;
    long ffts;
    double max_de, dip_drift;
  };
  std::vector<Row> rows;
  for (const Run& r : runs) {
    double max_de = 0.0, drift = 0.0;
    for (size_t i = 0; i < r.energy.size(); ++i)
      max_de = std::max(max_de, std::abs(r.energy[i] - ref.energy[i]));
    for (size_t i = 0; i < r.dipole.size(); ++i)
      drift = std::max(drift, std::abs(r.dipole[i] - ref.dipole[i]));
    rows.push_back({r.p, r.seconds, r.ffts, max_de, drift});
    std::printf("%10s %12.4f %8ld %14.3e %16.3e\n", precision_name(r.p),
                r.seconds, r.ffts, max_de, drift);
  }
  std::printf("(energies/dipoles measured with the FP64 operator; FP32 "
              "affects only the exchange hot path)\n");

  const char* path = "BENCH_exchange_precision.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f, "{\n  \"exchange_precision\": [\n");
    for (size_t i = 0; i < rows.size(); ++i)
      std::fprintf(f,
                   "    {\"precision\": \"%s\", \"seconds\": %.6e, "
                   "\"ffts\": %ld, \"max_abs_denergy\": %.3e, "
                   "\"dipole_drift\": %.3e, \"speedup_vs_fp64\": %.4f}%s\n",
                   precision_name(rows[i].p), rows[i].seconds, rows[i].ffts,
                   rows[i].max_de, rows[i].dip_drift,
                   rows[0].seconds / rows[i].seconds,
                   i + 1 < rows.size() ? "," : "");
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("(per-mode timings written to %s)\n", path);
  }
}

// ISDF rank sweep: the same 10-step PT-IM-ACE trajectory with the
// low-rank exchange at rank factors c in {4, 6, 8, 12} vs the dense
// operator. As in the precision sweep, observables of every run are
// measured with the DENSE FP64 operator so the columns isolate trajectory
// drift; wall time and FFT counts are the in-mode hot-path numbers.
// Results land in BENCH_isdf_accuracy.json for the accuracy trajectory.
void isdf_rank_sweep(MiniSystem& sys) {
  const int steps = 10;
  const real_t dt = 1.0;

  struct Run {
    real_t c = 0.0;  // 0 = dense reference
    double seconds = 0.0;
    long ffts = 0;
    std::vector<real_t> dipole, energy;
  };
  std::vector<Run> runs;
  for (const real_t c : {0.0, 4.0, 6.0, 8.0, 12.0}) {
    Run run;
    run.c = c;
    if (c > 0.0) {
      sys.ham->set_exchange_compression(ham::ExchangeCompression::kIsdf);
      sys.ham->set_isdf_rank_factor(c);
    } else {
      sys.ham->set_exchange_compression(ham::ExchangeCompression::kDense);
    }
    td::TdState s = sys.initial();
    td::PtImOptions opt;
    opt.dt = dt;
    opt.variant = td::PtImVariant::kAce;
    opt.tol = 1e-6;
    opt.tol_fock = 1e-6;
    td::PtImPropagator prop(*sys.ham, opt, nullptr);
    for (int i = 0; i < steps; ++i) {
      const long f0 = sys.ham->exchange_op().fft_count;
      Timer t;
      prop.step(s);
      run.seconds += t.seconds();
      run.ffts += sys.ham->exchange_op().fft_count - f0;
      // Observables through the dense operator, so every column is
      // measured with the same ruler.
      sys.ham->set_exchange_compression(ham::ExchangeCompression::kDense);
      run.dipole.push_back(sys.dipole_x(s));
      run.energy.push_back(sys.energy(s));
      if (c > 0.0)
        sys.ham->set_exchange_compression(ham::ExchangeCompression::kIsdf);
    }
    runs.push_back(std::move(run));
  }
  sys.ham->set_exchange_compression(ham::ExchangeCompression::kDense);

  std::printf("\n-- ISDF rank sweep: 10-step PT-IM-ACE, low-rank exchange "
              "per rank factor --\n");
  std::printf("%10s %12s %8s %14s %16s\n", "c (Nmu/nb)", "seconds", "FFTs",
              "max |dE| Ha", "dipole drift");
  const Run& ref = runs[0];
  struct Row {
    real_t c;
    double seconds;
    long ffts;
    double max_de, dip_drift;
  };
  std::vector<Row> rows;
  for (const Run& r : runs) {
    double max_de = 0.0, drift = 0.0;
    for (size_t i = 0; i < r.energy.size(); ++i)
      max_de = std::max(max_de, std::abs(r.energy[i] - ref.energy[i]));
    for (size_t i = 0; i < r.dipole.size(); ++i)
      drift = std::max(drift, std::abs(r.dipole[i] - ref.dipole[i]));
    rows.push_back({r.c, r.seconds, r.ffts, max_de, drift});
    if (r.c > 0.0)
      std::printf("%10.1f %12.4f %8ld %14.3e %16.3e\n", r.c, r.seconds,
                  r.ffts, max_de, drift);
    else
      std::printf("%10s %12.4f %8ld %14s %16s\n", "dense", r.seconds, r.ffts,
                  "-", "-");
  }
  std::printf("(observables measured with the dense FP64 operator; the fit "
              "is rebuilt on every ACE outer iteration)\n");

  const char* path = "BENCH_isdf_accuracy.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f, "{\n  \"isdf_accuracy\": [\n");
    for (size_t i = 0; i < rows.size(); ++i)
      std::fprintf(f,
                   "    {\"rank_factor\": %.1f, \"seconds\": %.6e, "
                   "\"ffts\": %ld, \"max_abs_denergy\": %.3e, "
                   "\"dipole_drift\": %.3e}%s\n",
                   rows[i].c, rows[i].seconds, rows[i].ffts, rows[i].max_de,
                   rows[i].dip_drift, i + 1 < rows.size() ? "," : "");
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("(per-rank-factor rows written to %s)\n", path);
  }
}

}  // namespace

int main() {
  bench::header(
      "Fig. 7 — PT-IM-ACE (large step) vs RK4 (25x smaller step):\n"
      "dipole moment along x and total energy, pure and mixed states");

  {
    MiniSystem pure = MiniSystem::make(/*T=*/0.0);
    compare("pure states (T = 0)", pure);
  }
  {
    MiniSystem mixed = MiniSystem::make(/*T=*/8000.0);
    compare("mixed states (T = 8000 K, fractional occupations)", mixed);
    precision_sweep(mixed);
    isdf_rank_sweep(mixed);
  }
  return 0;
}
