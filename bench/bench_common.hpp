#pragma once
// Shared bench scaffolding: a small hybrid finite-temperature silicon-like
// system (scaled down from the paper's cells so every bench finishes in
// seconds on one host) and table-printing helpers.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "backend/backend.hpp"
#include "common/timer.hpp"
#include "dist/band_ham.hpp"
#include "dist/exchange_dist.hpp"
#include "gs/scf.hpp"
#include "ham/density.hpp"
#include "pseudo/atoms.hpp"
#include "td/laser.hpp"
#include "td/observables.hpp"
#include "td/ptim.hpp"
#include "td/ptim_dist.hpp"
#include "td/rk4.hpp"

namespace ptim::bench {

// Self-contained miniature system: 2 Si atoms, reduced cutoff, hybrid
// functional on. The *structure* (mixed state, screened exchange, PT-IM
// fixed point) is identical to the paper's runs; only the scale differs.
struct MiniSystem {
  std::unique_ptr<grid::Lattice> lattice;
  pseudo::AtomList atoms;
  std::unique_ptr<grid::GSphere> sphere;
  std::unique_ptr<grid::FftGrid> wfc_grid;
  std::unique_ptr<grid::FftGrid> den_grid;
  std::unique_ptr<ham::Hamiltonian> ham;
  gs::ScfResult ground;

  static MiniSystem make(real_t temperature_k, real_t ecut = 3.0,
                         size_t nbands = 6) {
    MiniSystem s;
    const real_t box = 8.0;
    s.lattice = std::make_unique<grid::Lattice>(grid::Lattice::cubic(box));
    s.atoms.species = pseudo::Species::silicon_ah();
    s.atoms.positions = {{0.1 * box, 0.15 * box, 0.2 * box},
                         {0.6 * box, 0.55 * box, 0.65 * box}};
    s.sphere = std::make_unique<grid::GSphere>(*s.lattice, ecut);
    s.wfc_grid = std::make_unique<grid::FftGrid>(*s.lattice,
                                                 s.sphere->suggest_dims(1));
    s.den_grid = std::make_unique<grid::FftGrid>(*s.lattice,
                                                 s.sphere->suggest_dims(2));
    ham::HamiltonianOptions opt;
    s.ham = std::make_unique<ham::Hamiltonian>(
        *s.lattice, s.atoms, *s.sphere, *s.wfc_grid, *s.den_grid, opt);

    gs::ScfOptions scf;
    scf.nbands = nbands;
    scf.nelec = 8.0;
    scf.temperature_k = temperature_k;
    scf.tol_rho = 1e-7;
    scf.davidson_tol = 1e-8;
    s.ground = gs::ground_state(*s.ham, scf);
    return s;
  }

  td::TdState initial() const {
    return td::TdState::from_occupations(ground.phi, ground.occ);
  }

  std::vector<real_t> density(const td::TdState& s) const {
    return ham::density_sigma(s.phi, s.sigma, ham->den_map());
  }

  real_t dipole_x(const td::TdState& s) const {
    return td::dipole(density(s), *den_grid, {1.0, 0.0, 0.0});
  }

  real_t energy(const td::TdState& s) const {
    const auto rho = density(s);
    ham->set_density(rho);
    return ham->energy(s.phi, s.sigma, rho).total();
  }
};

// Run `steps` PT-IM steps of the band-parallel production propagator over
// `nranks` in-process thread ranks and return the per-rank measured
// CommStats — the real-solver analogue of the paper's Table I columns.
// step_seconds (optional) receives rank 0's wall clock over the step loop
// only, excluding per-rank Hamiltonian construction and state scatter.
inline std::vector<ptmpi::CommStats> run_distributed_steps(
    const MiniSystem& sys, td::PtImVariant variant,
    dist::ExchangePattern pattern, int nranks, int steps,
    double* step_seconds = nullptr,
    Precision exchange_precision = Precision::kDouble) {
  const size_t nb = sys.ground.phi.cols();
  const dist::BlockLayout bands(nb, nranks);
  const td::TdState init = sys.initial();
  ptmpi::run_ranks(nranks, 2, [&](ptmpi::Comm& c) {
    // Per-rank Hamiltonian over the shared read-only grids.
    ham::Hamiltonian h(*sys.lattice, sys.atoms, *sys.sphere, *sys.wfc_grid,
                       *sys.den_grid, ham::HamiltonianOptions{});
    dist::BandHamOptions bopt;
    bopt.pattern = pattern;
    dist::BandDistributedHamiltonian bdh(c, h, nb, bopt);
    td::DistTdState s = td::scatter_state(init, bands, c.rank());
    td::PtImOptions opt;
    opt.dt = 1.0;
    opt.tol = 1e-7;
    opt.variant = variant;
    opt.exchange_precision = exchange_precision;
    td::DistPtImPropagator prop(bdh, opt, nullptr);
    c.barrier();  // setup done on every rank before the clock starts
    Timer t;
    for (int i = 0; i < steps; ++i) prop.step(s);
    if (c.rank() == 0 && step_seconds) *step_seconds = t.seconds();
  });
  return ptmpi::last_run_stats();
}

// Best-of-`reps` wall time of one distributed diag-exchange application
// over `nranks` thread ranks under the given execution backend and
// circulation pattern — the shared measurement behind the overlap benches
// (bench_overlap and the closing section of bench_table1_comm), so the
// serialized-vs-overlapped protocol cannot drift between them.
// comm_seconds (optional) receives rank 0's Sendrecv + Wait + Bcast
// seconds from the SAME repetition the returned time comes from.
inline double time_exchange_apply(const MiniSystem& sys,
                                  const pw::SphereGridMap& map,
                                  backend::Kind kind,
                                  dist::ExchangePattern pat, int nranks,
                                  int reps = 3,
                                  double* comm_seconds = nullptr) {
  ham::ExchangeOptions xopt;
  xopt.backend = kind;
  ham::ExchangeOperator xop(map, xopt);
  double best = 1e99;
  for (int rep = 0; rep < reps; ++rep) {
    Timer t;
    ptmpi::run_ranks(nranks, 2, [&](ptmpi::Comm& c) {
      (void)dist::exchange_apply_distributed(
          c, xop, sys.ground.phi, sys.ground.occ, sys.ground.phi, pat);
    });
    const double secs = t.seconds();
    if (secs < best) {
      best = secs;
      if (comm_seconds) {
        *comm_seconds = 0.0;
        for (const char* op : {"Sendrecv", "Wait", "Bcast"}) {
          const auto& ops = ptmpi::last_run_stats()[0].ops;
          const auto it = ops.find(op);
          if (it != ops.end()) *comm_seconds += it->second.seconds;
        }
      }
    }
  }
  return best;
}

inline void rule(char c = '-') {
  for (int i = 0; i < 78; ++i) std::putchar(c);
  std::putchar('\n');
}

inline void header(const std::string& title) {
  rule('=');
  std::printf("%s\n", title.c_str());
  rule('=');
}

}  // namespace ptim::bench
