#pragma once
// Shared bench scaffolding: a small hybrid finite-temperature silicon-like
// system (scaled down from the paper's cells so every bench finishes in
// seconds on one host) and table-printing helpers.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "common/timer.hpp"
#include "dist/band_ham.hpp"
#include "dist/exchange_dist.hpp"
#include "dist/rotate.hpp"
#include "dist/slab_exchange.hpp"
#include "gs/scf.hpp"
#include "ham/density.hpp"
#include "pseudo/atoms.hpp"
#include "td/laser.hpp"
#include "td/observables.hpp"
#include "td/ptim.hpp"
#include "td/ptim_dist.hpp"
#include "td/rk4.hpp"

namespace ptim::bench {

// Shared machine-readable bench output: every bench binary writes (at
// least) one BENCH_<bench>.json through this writer, rows carrying the
// common schema {name, config, seconds, bytes} so CI can upload all
// BENCH_*.json files as one artifact set and downstream tooling can diff
// any bench the same way. Benches with richer custom dumps keep those too;
// this is the least common denominator every one of them emits.
class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  void add(const std::string& name, const std::string& config, double seconds,
           long long bytes = 0) {
    rows_.push_back({name, config, seconds, bytes});
  }

  // Writes BENCH_<bench>.json in the working directory.
  void write() const {
    const std::string path = "BENCH_" + bench_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n",
                 bench_.c_str());
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"config\": \"%s\", "
                   "\"seconds\": %.6e, \"bytes\": %lld}%s\n",
                   r.name.c_str(), r.config.c_str(), r.seconds, r.bytes,
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("(written to %s)\n", path.c_str());
  }

 private:
  struct Row {
    std::string name, config;
    double seconds;
    long long bytes;
  };
  std::string bench_;
  std::vector<Row> rows_;
};

// Self-contained miniature system: 2 Si atoms, reduced cutoff, hybrid
// functional on. The *structure* (mixed state, screened exchange, PT-IM
// fixed point) is identical to the paper's runs; only the scale differs.
struct MiniSystem {
  std::unique_ptr<grid::Lattice> lattice;
  pseudo::AtomList atoms;
  std::unique_ptr<grid::GSphere> sphere;
  std::unique_ptr<grid::FftGrid> wfc_grid;
  std::unique_ptr<grid::FftGrid> den_grid;
  std::unique_ptr<ham::Hamiltonian> ham;
  gs::ScfResult ground;

  static MiniSystem make(real_t temperature_k, real_t ecut = 3.0,
                         size_t nbands = 6) {
    MiniSystem s;
    const real_t box = 8.0;
    s.lattice = std::make_unique<grid::Lattice>(grid::Lattice::cubic(box));
    s.atoms.species = pseudo::Species::silicon_ah();
    s.atoms.positions = {{0.1 * box, 0.15 * box, 0.2 * box},
                         {0.6 * box, 0.55 * box, 0.65 * box}};
    s.sphere = std::make_unique<grid::GSphere>(*s.lattice, ecut);
    s.wfc_grid = std::make_unique<grid::FftGrid>(*s.lattice,
                                                 s.sphere->suggest_dims(1));
    s.den_grid = std::make_unique<grid::FftGrid>(*s.lattice,
                                                 s.sphere->suggest_dims(2));
    ham::HamiltonianOptions opt;
    s.ham = std::make_unique<ham::Hamiltonian>(
        *s.lattice, s.atoms, *s.sphere, *s.wfc_grid, *s.den_grid, opt);

    gs::ScfOptions scf;
    scf.nbands = nbands;
    scf.nelec = 8.0;
    scf.temperature_k = temperature_k;
    scf.tol_rho = 1e-7;
    scf.davidson_tol = 1e-8;
    s.ground = gs::ground_state(*s.ham, scf);
    return s;
  }

  td::TdState initial() const {
    return td::TdState::from_occupations(ground.phi, ground.occ);
  }

  std::vector<real_t> density(const td::TdState& s) const {
    return ham::density_sigma(s.phi, s.sigma, ham->den_map());
  }

  real_t dipole_x(const td::TdState& s) const {
    return td::dipole(density(s), *den_grid, {1.0, 0.0, 0.0});
  }

  real_t energy(const td::TdState& s) const {
    const auto rho = density(s);
    ham->set_density(rho);
    return ham->energy(s.phi, s.sigma, rho).total();
  }
};

// Run `steps` PT-IM steps of the band-parallel production propagator over
// `nranks` in-process thread ranks and return the per-rank measured
// CommStats — the real-solver analogue of the paper's Table I columns.
// step_seconds (optional) receives rank 0's wall clock over the step loop
// only, excluding per-rank Hamiltonian construction and state scatter.
inline std::vector<ptmpi::CommStats> run_distributed_steps(
    const MiniSystem& sys, td::PtImVariant variant,
    dist::ExchangePattern pattern, int nranks, int steps,
    double* step_seconds = nullptr,
    Precision exchange_precision = Precision::kDouble) {
  const size_t nb = sys.ground.phi.cols();
  const dist::BlockLayout bands(nb, nranks);
  const td::TdState init = sys.initial();
  ptmpi::run_ranks(nranks, 2, [&](ptmpi::Comm& c) {
    // Per-rank Hamiltonian over the shared read-only grids.
    ham::Hamiltonian h(*sys.lattice, sys.atoms, *sys.sphere, *sys.wfc_grid,
                       *sys.den_grid, ham::HamiltonianOptions{});
    dist::BandHamOptions bopt;
    bopt.pattern = pattern;
    dist::BandDistributedHamiltonian bdh(c, h, nb, bopt);
    td::DistTdState s = td::scatter_state(init, bands, c.rank());
    td::PtImOptions opt;
    opt.dt = 1.0;
    opt.tol = 1e-7;
    opt.variant = variant;
    opt.exchange_precision = exchange_precision;
    td::DistPtImPropagator prop(bdh, opt, nullptr);
    c.barrier();  // setup done on every rank before the clock starts
    Timer t;
    for (int i = 0; i < steps; ++i) prop.step(s);
    if (c.rank() == 0 && step_seconds) *step_seconds = t.seconds();
  });
  return ptmpi::last_run_stats();
}

// Best-of-`reps` wall time of one distributed diag-exchange application
// over `nranks` thread ranks under the given execution backend and
// circulation pattern — the shared measurement behind the overlap benches
// (bench_overlap and the closing section of bench_table1_comm), so the
// serialized-vs-overlapped protocol cannot drift between them.
// comm_seconds (optional) receives rank 0's Sendrecv + Wait + Bcast
// seconds from the SAME repetition the returned time comes from.
inline double time_exchange_apply(const MiniSystem& sys,
                                  const pw::SphereGridMap& map,
                                  backend::Kind kind,
                                  dist::ExchangePattern pat, int nranks,
                                  int reps = 3,
                                  double* comm_seconds = nullptr) {
  ham::ExchangeOptions xopt;
  xopt.backend = kind;
  ham::ExchangeOperator xop(map, xopt);
  double best = 1e99;
  for (int rep = 0; rep < reps; ++rep) {
    Timer t;
    ptmpi::run_ranks(nranks, 2, [&](ptmpi::Comm& c) {
      (void)dist::exchange_apply_distributed(
          c, xop, sys.ground.phi, sys.ground.occ, sys.ground.phi, pat);
    });
    const double secs = t.seconds();
    if (secs < best) {
      best = secs;
      if (comm_seconds) {
        *comm_seconds = 0.0;
        // Quiesced locked copy (CommStats::snapshot) — the one sanctioned
        // way to read op stats, even though run_ranks has already joined.
        const ptmpi::CommStats st = ptmpi::last_run_stats()[0].snapshot();
        for (const char* op : {"Sendrecv", "Wait", "Bcast"}) {
          const auto it = st.ops.find(op);
          if (it != st.ops.end()) *comm_seconds += it->second.seconds;
        }
      }
    }
  }
  return best;
}

// One measured exchange application on a pb x pg process grid (pg == 1
// runs the production 1-D band circulation, pg > 1 the slab pipeline) —
// the shared measurement behind the pb x pg sweeps of bench_table1_comm
// and bench_fig10_strong. Reports rank 0's per-rank traffic split into the
// ring payload (Sendrecv + Wait + Bcast), the pencil-transpose Alltoallv
// and the sphere-gather Allreduce (2-D-only traffic that must be counted
// against the ring-byte savings), plus rank 0's slab-FFT seconds and the
// apply wall time. Setup (GridContext splits, FFT plan tables, scatter
// plans, band slicing) happens OUTSIDE the timed window on every layout,
// so the apply column compares like with like.
struct GridSweepRow {
  int pb = 1, pg = 1;
  double apply_seconds = 0.0;     // rank 0 wall time of the apply only
  double slab_fft_seconds = 0.0;  // 0 when pg == 1 (no distributed FFT)
  long long ring_bytes = 0;
  long long alltoallv_bytes = 0;
  long long allreduce_bytes = 0;
};

inline GridSweepRow run_grid_exchange(const MiniSystem& sys,
                                      const pw::SphereGridMap& map, int pb,
                                      int pg, dist::ExchangePattern pat) {
  ham::ExchangeOperator xop(map, {});
  const la::MatC& src = sys.ground.phi;
  const std::vector<real_t>& d = sys.ground.occ;
  const dist::BlockLayout bands(src.cols(), pb);
  const int nranks = pb * pg;
  GridSweepRow row;
  row.pb = pb;
  row.pg = pg;
  std::vector<double> fft_secs(static_cast<size_t>(nranks), 0.0);
  double apply_secs = 0.0;  // written by world rank 0 only
  ptmpi::run_ranks(nranks, 2, [&](ptmpi::Comm& c) {
    const dist::ProcessGrid pgrid{pb, pg};
    const int br = pgrid.band_rank_of(c.rank());
    std::vector<real_t> d_local(
        d.begin() + static_cast<long>(bands.offset(br)),
        d.begin() + static_cast<long>(bands.offset(br) + bands.count(br)));
    const la::MatC src_local = dist::scatter_bands(src, bands, br);
    if (pg <= 1) {
      c.barrier();  // setup done everywhere before the clock starts
      Timer t;
      (void)dist::exchange_apply_distributed_local(
          c, xop, src_local, d_local, src_local, bands, pat);
      if (c.rank() == 0) apply_secs = t.seconds();
      return;
    }
    dist::GridContext gc(c, pgrid, map);
    c.barrier();
    Timer t;
    (void)dist::exchange_apply_slab_local(gc, xop, src_local, d_local,
                                          src_local, bands, pat);
    if (c.rank() == 0) apply_secs = t.seconds();
    fft_secs[static_cast<size_t>(c.rank())] =
        gc.fft64().seconds() + gc.fft32().seconds();
  });
  row.apply_seconds = apply_secs;
  row.slab_fft_seconds = fft_secs[0];
  const ptmpi::CommStats st = ptmpi::last_run_stats()[0].snapshot();
  auto bytes_of = [&](const char* op) {
    const auto it = st.ops.find(op);
    return it != st.ops.end() ? it->second.bytes : 0LL;
  };
  row.ring_bytes =
      bytes_of("Sendrecv") + bytes_of("Wait") + bytes_of("Bcast");
  row.alltoallv_bytes = bytes_of("Alltoallv");
  row.allreduce_bytes = bytes_of("Allreduce");
  return row;
}

inline void rule(char c = '-') {
  for (int i = 0; i < 78; ++i) std::putchar(c);
  std::putchar('\n');
}

inline void header(const std::string& title) {
  rule('=');
  std::printf("%s\n", title.c_str());
  rule('=');
}

}  // namespace ptim::bench
