// Kernel microbenchmarks (google-benchmark): the primitives whose sustained
// rates feed the netsim platform calibration — 3-D FFTs, zgemm, exchange
// pair evaluation, ACE application and the density builders.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "grid/fft_grid.hpp"
#include "grid/gsphere.hpp"
#include "ham/ace.hpp"
#include "ham/density.hpp"
#include "ham/exchange.hpp"
#include "la/blas.hpp"
#include "pw/transforms.hpp"
#include "pw/wavefunction.hpp"

using namespace ptim;

namespace {

la::MatC random_mat(size_t r, size_t c, unsigned seed) {
  Rng rng(seed);
  la::MatC m(r, c);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.uniform_cplx();
  return m;
}

struct XBench {
  grid::Lattice lattice = grid::Lattice::cubic(8.0);
  grid::GSphere sphere{lattice, 3.0};
  grid::FftGrid wfc{lattice, sphere.suggest_dims(1)};
  grid::FftGrid den{lattice, sphere.suggest_dims(2)};
  pw::SphereGridMap map{sphere, wfc};
  pw::SphereGridMap dmap{sphere, den};
  ham::ExchangeOperator xop{map, {}};
};

XBench& xbench() {
  static XBench* x = new XBench();
  return *x;
}

}  // namespace

static void BM_Fft3D(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  fft::Fft3 f(n, n, n);
  std::vector<cplx> data(f.size());
  Rng rng(1);
  for (auto& v : data) v = rng.uniform_cplx();
  for (auto _ : state) {
    f.forward(data.data());
    f.inverse(data.data());
    benchmark::DoNotOptimize(data.data());
  }
  const double ng = static_cast<double>(f.size());
  state.counters["MFLOP/s"] = benchmark::Counter(
      2.0 * 5.0 * ng * std::log2(ng) * 1e-6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Fft3D)->Arg(16)->Arg(24)->Arg(32);

static void BM_GemmCN(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const la::MatC a = random_mat(4096, n, 2);
  const la::MatC b = random_mat(4096, n, 3);
  la::MatC c(n, n);
  for (auto _ : state) {
    la::gemm_cn(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["MFLOP/s"] = benchmark::Counter(
      8.0 * 4096.0 * static_cast<double>(n * n) * 1e-6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmCN)->Arg(8)->Arg(16)->Arg(32);

static void BM_ExchangePair(benchmark::State& state) {
  auto& x = xbench();
  const size_t npw = x.sphere.npw();
  la::MatC src = random_mat(npw, 1, 4);
  pw::orthonormalize_lowdin(src);
  la::MatC out(npw, 1);
  const std::vector<real_t> d{1.0};
  for (auto _ : state) {
    x.xop.apply_diag(src, d, src, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["pairs/s"] =
      benchmark::Counter(1.0, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExchangePair);

static void BM_ExchangeApplyN(benchmark::State& state) {
  auto& x = xbench();
  const auto nb = static_cast<size_t>(state.range(0));
  const size_t npw = x.sphere.npw();
  la::MatC src = random_mat(npw, nb, 5);
  pw::orthonormalize_lowdin(src);
  la::MatC out(npw, nb);
  const std::vector<real_t> d(nb, 0.5);
  for (auto _ : state) {
    x.xop.apply_diag(src, d, src, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["pairFFTs/s"] = benchmark::Counter(
      static_cast<double>(2 * nb * nb), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExchangeApplyN)->Arg(2)->Arg(4)->Arg(8);

static void BM_AceApply(benchmark::State& state) {
  auto& x = xbench();
  const auto nb = static_cast<size_t>(state.range(0));
  const size_t npw = x.sphere.npw();
  la::MatC src = random_mat(npw, nb, 6);
  pw::orthonormalize_lowdin(src);
  la::MatC w(npw, nb);
  x.xop.apply_diag(src, std::vector<real_t>(nb, 0.5), src, w);
  const auto ace = ham::AceOperator::build(src, w);
  la::MatC out(npw, nb);
  for (auto _ : state) {
    ace.apply(src, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_AceApply)->Arg(4)->Arg(8);

static void BM_DensitySigma(benchmark::State& state) {
  auto& x = xbench();
  const auto nb = static_cast<size_t>(state.range(0));
  const size_t npw = x.sphere.npw();
  la::MatC phi = random_mat(npw, nb, 7);
  pw::orthonormalize_lowdin(phi);
  la::MatC sigma(nb, nb);
  for (size_t i = 0; i < nb; ++i) sigma(i, i) = 0.5;
  for (auto _ : state) {
    auto rho = ham::density_sigma(phi, sigma, x.dmap);
    benchmark::DoNotOptimize(rho.data());
  }
}
BENCHMARK(BM_DensitySigma)->Arg(4)->Arg(8);
