// Kernel microbenchmarks: the primitives whose sustained rates feed the
// netsim platform calibration — 3-D FFTs (single and batched), zgemm,
// exchange pair evaluation at every batch size, ACE application and the
// density builders. The google-benchmark section is optional
// (PTIM_HAVE_BENCHMARK; CI images lack the library): the plain-chrono
// comparisons below always build — per-pair vs batched exchange, FP64 vs
// FP32, dense vs ISDF, the per-SIMD-ISA c2c vs Γ-point r2c engine
// head-to-head and the complex vs gamma_real exchange pipeline — and the
// latter two record FFT-count-gated rows to BENCH_kernels.json.

#ifdef PTIM_HAVE_BENCHMARK
#include <benchmark/benchmark.h>
#endif

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "fft/simd.hpp"
#include "grid/fft_grid.hpp"
#include "grid/gsphere.hpp"
#include "ham/ace.hpp"
#include "ham/density.hpp"
#include "ham/exchange.hpp"
#include "la/blas.hpp"
#include "pw/transforms.hpp"
#include "pw/wavefunction.hpp"

using namespace ptim;

namespace {

la::MatC random_mat(size_t r, size_t c, unsigned seed) {
  Rng rng(seed);
  la::MatC m(r, c);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.uniform_cplx();
  return m;
}

struct XBench {
  grid::Lattice lattice = grid::Lattice::cubic(8.0);
  grid::GSphere sphere{lattice, 3.0};
  grid::FftGrid wfc{lattice, sphere.suggest_dims(1)};
  grid::FftGrid den{lattice, sphere.suggest_dims(2)};
  pw::SphereGridMap map{sphere, wfc};
  pw::SphereGridMap dmap{sphere, den};
  ham::ExchangeOperator xop{map, {}};
};

XBench& xbench() {
  static XBench* x = new XBench();
  return *x;
}

}  // namespace

#ifdef PTIM_HAVE_BENCHMARK

static void BM_Fft3D(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  fft::Fft3 f(n, n, n);
  std::vector<cplx> data(f.size());
  Rng rng(1);
  for (auto& v : data) v = rng.uniform_cplx();
  for (auto _ : state) {
    f.forward(data.data());
    f.inverse(data.data());
    benchmark::DoNotOptimize(data.data());
  }
  const double ng = static_cast<double>(f.size());
  state.counters["MFLOP/s"] = benchmark::Counter(
      2.0 * 5.0 * ng * std::log2(ng) * 1e-6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Fft3D)->Arg(16)->Arg(24)->Arg(32);

static void BM_Fft3DBatch(benchmark::State& state) {
  const size_t n = 20;
  const auto nbatch = static_cast<size_t>(state.range(0));
  fft::Fft3 f(n, n, n);
  std::vector<cplx> data(f.size() * nbatch);
  Rng rng(1);
  for (auto& v : data) v = rng.uniform_cplx();
  for (auto _ : state) {
    f.forward_batch(data.data(), nbatch);
    f.inverse_batch(data.data(), nbatch);
    benchmark::DoNotOptimize(data.data());
  }
  state.counters["transforms/s"] = benchmark::Counter(
      2.0 * static_cast<double>(nbatch), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Fft3DBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// FP32 twin of the batched 3-D transform: same boxes, half the bytes per
// element — the expected win on this bandwidth-bound kernel.
static void BM_Fft3DBatchF32(benchmark::State& state) {
  const size_t n = 20;
  const auto nbatch = static_cast<size_t>(state.range(0));
  fft::Fft3f f(n, n, n);
  std::vector<cplxf> data(f.size() * nbatch);
  Rng rng(1);
  for (auto& v : data) v = static_cast<cplxf>(rng.uniform_cplx());
  for (auto _ : state) {
    f.forward_batch(data.data(), nbatch);
    f.inverse_batch(data.data(), nbatch);
    benchmark::DoNotOptimize(data.data());
  }
  state.counters["transforms/s"] = benchmark::Counter(
      2.0 * static_cast<double>(nbatch), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Fft3DBatchF32)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

static void BM_GemmCN(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const la::MatC a = random_mat(4096, n, 2);
  const la::MatC b = random_mat(4096, n, 3);
  la::MatC c(n, n);
  for (auto _ : state) {
    la::gemm_cn(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["MFLOP/s"] = benchmark::Counter(
      8.0 * 4096.0 * static_cast<double>(n * n) * 1e-6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmCN)->Arg(8)->Arg(16)->Arg(32);

static void BM_ExchangePair(benchmark::State& state) {
  auto& x = xbench();
  const size_t npw = x.sphere.npw();
  la::MatC src = random_mat(npw, 1, 4);
  pw::orthonormalize_lowdin(src);
  la::MatC out(npw, 1);
  const std::vector<real_t> d{1.0};
  for (auto _ : state) {
    x.xop.apply_diag(src, d, src, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["pairs/s"] =
      benchmark::Counter(1.0, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExchangePair);

static void BM_ExchangeApplyN(benchmark::State& state) {
  auto& x = xbench();
  const auto nb = static_cast<size_t>(state.range(0));
  const size_t npw = x.sphere.npw();
  la::MatC src = random_mat(npw, nb, 5);
  pw::orthonormalize_lowdin(src);
  la::MatC out(npw, nb);
  const std::vector<real_t> d(nb, 0.5);
  for (auto _ : state) {
    x.xop.apply_diag(src, d, src, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["pairFFTs/s"] = benchmark::Counter(
      static_cast<double>(2 * nb * nb), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExchangeApplyN)->Arg(2)->Arg(4)->Arg(8);

// Same problem (8 sources x 8 targets), swept over the exchange batch
// size. Arg(1) is the per-pair ablation baseline; the per-batch-size FFT
// counts and wall times land in the google-benchmark JSON via counters.
static void BM_ExchangeBatchSize(benchmark::State& state) {
  auto& x = xbench();
  const auto bs = static_cast<size_t>(state.range(0));
  const size_t nb = 8;
  const size_t npw = x.sphere.npw();
  la::MatC src = random_mat(npw, nb, 8);
  pw::orthonormalize_lowdin(src);
  la::MatC out(npw, nb);
  const std::vector<real_t> d(nb, 0.5);
  ham::ExchangeOptions opt;
  opt.batch_size = bs;
  ham::ExchangeOperator xop(x.map, opt);
  xop.fft_count = 0;
  for (auto _ : state) {
    xop.apply_diag(src, d, src, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["ffts_per_apply"] = benchmark::Counter(
      static_cast<double>(2 * nb * nb));
  state.counters["pairFFTs/s"] = benchmark::Counter(
      static_cast<double>(2 * nb * nb), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExchangeBatchSize)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// Batched exchange apply swept over the precision policy on one fixed 8x8
// problem: arg 0/1/2 = kDouble/kSingle/kSingleCompensated.
static void BM_ExchangePrecision(benchmark::State& state) {
  auto& x = xbench();
  const auto p = static_cast<Precision>(state.range(0));
  const size_t nb = 8;
  const size_t npw = x.sphere.npw();
  la::MatC src = random_mat(npw, nb, 10);
  pw::orthonormalize_lowdin(src);
  la::MatC out(npw, nb);
  const std::vector<real_t> d(nb, 0.5);
  ham::ExchangeOptions opt;
  opt.precision = p;
  ham::ExchangeOperator xop(x.map, opt);
  for (auto _ : state) {
    xop.apply_diag(src, d, src, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(precision_name(p));
  state.counters["pairFFTs/s"] = benchmark::Counter(
      static_cast<double>(2 * nb * nb), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExchangePrecision)->Arg(0)->Arg(1)->Arg(2);

static void BM_AceApply(benchmark::State& state) {
  auto& x = xbench();
  const auto nb = static_cast<size_t>(state.range(0));
  const size_t npw = x.sphere.npw();
  la::MatC src = random_mat(npw, nb, 6);
  pw::orthonormalize_lowdin(src);
  la::MatC w(npw, nb);
  x.xop.apply_diag(src, std::vector<real_t>(nb, 0.5), src, w);
  const auto ace = ham::AceOperator::build(src, w);
  la::MatC out(npw, nb);
  for (auto _ : state) {
    ace.apply(src, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_AceApply)->Arg(4)->Arg(8);

static void BM_DensitySigma(benchmark::State& state) {
  auto& x = xbench();
  const auto nb = static_cast<size_t>(state.range(0));
  const size_t npw = x.sphere.npw();
  la::MatC phi = random_mat(npw, nb, 7);
  pw::orthonormalize_lowdin(phi);
  la::MatC sigma(nb, nb);
  for (size_t i = 0; i < nb; ++i) sigma(i, i) = 0.5;
  for (auto _ : state) {
    auto rho = ham::density_sigma(phi, sigma, x.dmap);
    benchmark::DoNotOptimize(rho.data());
  }
}
BENCHMARK(BM_DensitySigma)->Arg(4)->Arg(8);

#endif  // PTIM_HAVE_BENCHMARK

namespace {

// Head-to-head acceptance check: per-pair (batch_size = 1) vs batched
// exchange on the same 8x8 problem — printed, and recorded per batch size
// to bench_exchange_batch.json for the perf trajectory.
void exchange_batch_comparison() {
  auto& x = xbench();
  const size_t nb = 8;
  const size_t npw = x.sphere.npw();
  la::MatC src = random_mat(npw, nb, 9);
  pw::orthonormalize_lowdin(src);
  const std::vector<real_t> d(nb, 0.5);

  struct Row {
    size_t batch;
    double seconds;
    long ffts;
    double max_abs_diff;
  };
  std::vector<Row> rows;
  la::MatC ref;
  const int reps = 3;
  for (const size_t bs : {size_t(1), size_t(2), size_t(4), size_t(8),
                          size_t(16)}) {
    ham::ExchangeOptions opt;
    opt.batch_size = bs;
    ham::ExchangeOperator xop(x.map, opt);
    la::MatC out(npw, nb);
    xop.apply_diag(src, d, src, out);  // warm-up
    xop.fft_count = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) xop.apply_diag(src, d, src, out);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec =
        std::chrono::duration<double>(t1 - t0).count() / reps;
    double max_abs = 0.0;
    if (bs == 1) {
      ref = out;
    } else {
      for (size_t i = 0; i < out.size(); ++i)
        max_abs =
            std::max(max_abs, std::abs(out.data()[i] - ref.data()[i]));
    }
    rows.push_back({bs, sec, xop.fft_count / reps, max_abs});
  }

  std::printf("\nExchange apply: per-pair vs batched FFT (8 sources x 8 "
              "targets, %zu^3-ish grid)\n", x.wfc.dims()[0]);
  std::printf("%10s %12s %10s %10s %16s\n", "batch", "seconds", "FFTs",
              "speedup", "max|d| vs B=1");
  for (const auto& r : rows)
    std::printf("%10zu %12.5f %10ld %9.2fx %16.2e\n", r.batch, r.seconds,
                r.ffts, rows[0].seconds / r.seconds, r.max_abs_diff);

  const char* path = "bench_exchange_batch.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f, "{\n  \"exchange_batch\": [\n");
    for (size_t i = 0; i < rows.size(); ++i)
      std::fprintf(f,
                   "    {\"batch_size\": %zu, \"seconds\": %.6e, "
                   "\"ffts\": %ld, \"speedup_vs_per_pair\": %.4f, "
                   "\"max_abs_diff\": %.3e}%s\n",
                   rows[i].batch, rows[i].seconds, rows[i].ffts,
                   rows[0].seconds / rows[i].seconds, rows[i].max_abs_diff,
                   i + 1 < rows.size() ? "," : "");
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("(per-batch-size timings written to %s)\n", path);
  }
}

// Precision head-to-head: the FP64 batched exchange apply vs the FP32
// pipeline (plain and Kahan-compensated) on the same 8x8 problem. The
// acceptance bar is FP32 beating FP64 wall-clock while staying within 1e-6
// relative of the FP64 result.
void exchange_precision_comparison() {
  auto& x = xbench();
  const size_t nb = 8;
  const size_t npw = x.sphere.npw();
  la::MatC src = random_mat(npw, nb, 11);
  pw::orthonormalize_lowdin(src);
  const std::vector<real_t> d(nb, 0.5);

  struct Row {
    Precision p;
    double seconds;
    long ffts;
    double max_abs_diff;
  };
  std::vector<Row> rows;
  la::MatC ref;
  const int reps = 20;  // ~2 ms per apply; enough reps to drown scheduler noise
  for (const Precision p : {Precision::kDouble, Precision::kSingle,
                            Precision::kSingleCompensated}) {
    ham::ExchangeOptions opt;
    opt.precision = p;
    ham::ExchangeOperator xop(x.map, opt);
    la::MatC out(npw, nb);
    xop.apply_diag(src, d, src, out);  // warm-up
    xop.fft_count = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) xop.apply_diag(src, d, src, out);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count() / reps;
    double max_abs = 0.0;
    if (p == Precision::kDouble) {
      ref = out;
    } else {
      for (size_t i = 0; i < out.size(); ++i)
        max_abs = std::max(max_abs, std::abs(out.data()[i] - ref.data()[i]));
    }
    rows.push_back({p, sec, xop.fft_count / reps, max_abs});
  }

  std::printf("\nExchange apply: FP64 vs FP32 pipeline (8 sources x 8 "
              "targets, batch 8)\n");
  std::printf("%10s %12s %10s %10s %16s\n", "precision", "seconds", "FFTs",
              "speedup", "max|d| vs fp64");
  for (const auto& r : rows)
    std::printf("%10s %12.5f %10ld %9.2fx %16.2e\n", precision_name(r.p),
                r.seconds, r.ffts, rows[0].seconds / r.seconds,
                r.max_abs_diff);
}

// Low-rank head-to-head: dense O(nb^2) pair-FFT exchange vs the ISDF
// compressed apply (fit rebuilt per apply, as in production) on the PT-IM
// shape (targets = the full band block). The acceptance bar is >= 2x fewer
// FFTs and a wall-clock win at nb >= 16; per-config rows are recorded to
// bench_exchange_isdf.json for the perf trajectory.
void exchange_isdf_comparison() {
  // Production-like grid (2744 points, radix-7 dims): large enough that
  // the dense path's 2 na nb pair FFTs dominate, the regime ISDF targets.
  grid::Lattice lattice = grid::Lattice::cubic(8.0);
  grid::GSphere sphere(lattice, 14.0);
  grid::FftGrid wfc(lattice, sphere.suggest_dims(1));
  pw::SphereGridMap map{sphere, wfc};
  const size_t npw = sphere.npw();

  struct Row {
    size_t nb;
    const char* mode;
    double rank_factor;
    double seconds;
    long ffts;
    double rel_err;
  };
  std::vector<Row> rows;
  const int reps = 25;
  for (const size_t nb : {size_t(16), size_t(32)}) {
    la::MatC src = random_mat(npw, nb, 13 + static_cast<unsigned>(nb));
    pw::orthonormalize_lowdin(src);
    const std::vector<real_t> d(nb, 0.5);
    la::MatC ref;
    double ref_norm = 1.0;
    struct Cfg {
      const char* mode;
      ham::ExchangeCompression comp;
      double c;
    };
    const std::vector<Cfg> cfgs = {
        Cfg{"dense", ham::ExchangeCompression::kDense, 0.0},
        Cfg{"isdf", ham::ExchangeCompression::kIsdf, 4.0},
        Cfg{"isdf", ham::ExchangeCompression::kIsdf, 8.0}};
    std::vector<std::unique_ptr<ham::ExchangeOperator>> xops;
    std::vector<double> secs(cfgs.size(), 1e300);
    la::MatC out(npw, nb);
    for (const Cfg& cfg : cfgs) {
      ham::ExchangeOptions opt;
      opt.compression = cfg.comp;
      if (cfg.c > 0.0) opt.isdf_rank_factor = cfg.c;
      xops.push_back(std::make_unique<ham::ExchangeOperator>(map, opt));
      xops.back()->apply_diag(src, d, src, out);  // warm-up
    }
    // Min over reps, interleaved round-robin across configs: shared-machine
    // timing drift is slower than one rep, so a contiguous per-config block
    // would bias whichever config lands on a slow phase. Interleaving gives
    // every config the same shot at the quiet windows the min picks out.
    for (int r = 0; r < reps; ++r)
      for (size_t ci = 0; ci < cfgs.size(); ++ci) {
        const auto t0 = std::chrono::steady_clock::now();
        xops[ci]->apply_diag(src, d, src, out);
        const auto t1 = std::chrono::steady_clock::now();
        secs[ci] =
            std::min(secs[ci], std::chrono::duration<double>(t1 - t0).count());
      }
    for (size_t ci = 0; ci < cfgs.size(); ++ci) {
      ham::ExchangeOperator& xop = *xops[ci];
      xop.fft_count = 0;
      xop.apply_diag(src, d, src, out);
      double rel = 0.0;
      if (cfgs[ci].comp == ham::ExchangeCompression::kDense) {
        ref = out;
        ref_norm = std::max(la::frob_norm(ref), 1.0);
      } else {
        rel = la::frob_diff(out, ref) / ref_norm;
      }
      rows.push_back(
          {nb, cfgs[ci].mode, cfgs[ci].c, secs[ci], xop.fft_count.load(), rel});
    }
  }

  std::printf("\nExchange apply: dense pair FFTs vs ISDF low-rank "
              "(targets = band block, fit per apply,\n ng=%zu grid; rel err "
              "is the incompressible-random-orbital regime, see README)\n",
              wfc.size());
  std::printf("%6s %8s %6s %12s %10s %10s %14s\n", "bands", "mode", "c",
              "seconds", "FFTs", "speedup", "rel|d| vs dense");
  double dense_sec = 0.0;
  for (const auto& r : rows) {
    if (r.rank_factor == 0.0) dense_sec = r.seconds;
    std::printf("%6zu %8s %6.1f %12.5f %10ld %9.2fx %14.2e\n", r.nb, r.mode,
                r.rank_factor, r.seconds, r.ffts, dense_sec / r.seconds,
                r.rel_err);
  }

  const char* path = "bench_exchange_isdf.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f, "{\n  \"exchange_isdf\": [\n");
    for (size_t i = 0; i < rows.size(); ++i)
      std::fprintf(f,
                   "    {\"bands\": %zu, \"mode\": \"%s\", "
                   "\"rank_factor\": %.1f, \"seconds\": %.6e, "
                   "\"ffts\": %ld, \"rel_err\": %.3e}%s\n",
                   rows[i].nb, rows[i].mode, rows[i].rank_factor,
                   rows[i].seconds, rows[i].ffts, rows[i].rel_err,
                   i + 1 < rows.size() ? "," : "");
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("(per-config timings written to %s)\n", path);
  }
}

// --- Γ-point / SIMD engine comparisons ------------------------------------
// Both write FFT-count-gated rows to BENCH_kernels.json (wall-clock columns
// ride along for the local trajectory but are never gated).

struct KernelRow {
  std::string name, isa, variant;
  size_t fields;
  double seconds;
  long ffts;
};
std::vector<KernelRow> kernel_rows;

// Batched 3-D engine head-to-head per available SIMD ISA: the complex c2c
// batch vs the Γ-point r2c paths — full (unscrambled conjugate-symmetric
// spectra) and packed (two reals per lane, the transform the exchange
// pipeline actually runs). Acceptance: packed r2c at the best ISA >= 2x
// the scalar c2c batch on the same fields.
void fft_engine_comparison() {
  const size_t n = 20, nfields = 16;
  fft::Fft3 f(n, n, n);
  const size_t ng = f.size();
  const size_t nlanes = (nfields + 1) / 2;
  Rng rng(17);
  std::vector<real_t> rdata(nfields * ng);
  for (auto& v : rdata) v = rng.uniform() - 0.5;
  std::vector<cplx> cdata(nfields * ng), spec(nfields * ng),
      packed(nlanes * ng);
  for (size_t i = 0; i < cdata.size(); ++i) cdata[i] = cplx(rdata[i], 0.0);
  for (size_t q = 0; q < nlanes; ++q)
    for (size_t i = 0; i < ng; ++i)
      packed[q * ng + i] =
          cplx(rdata[2 * q * ng + i], rdata[(2 * q + 1) * ng + i]);
  std::vector<real_t> rout(nfields * ng);

  std::printf("\nBatched 3-D FFT engine: c2c vs Γ-point r2c per SIMD ISA "
              "(%zu^3 box, %zu real fields)\n",
              n, nfields);
  std::printf("%8s %12s %8s %12s %6s %10s\n", "isa", "variant", "fields",
              "seconds", "FFTs", "speedup");
  const int reps = 6;
  double scalar_c2c = 0.0;
  using fft::simd::Isa;
  for (const Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512, Isa::kNeon}) {
    if (!fft::simd::available(isa)) continue;
    fft::simd::force_isa(isa);
    struct Variant {
      const char* name;
      std::function<void()> run;
      long ffts;  // 3-D transforms per run (forward + inverse)
    };
    const std::vector<Variant> variants = {
        {"c2c",
         [&] {
           f.forward_batch(cdata.data(), nfields);
           f.inverse_batch(cdata.data(), nfields);
         },
         2L * static_cast<long>(nfields)},
        {"r2c_full",
         [&] {
           f.forward_batch_real(rdata.data(), spec.data(), nfields);
           f.inverse_batch_real(spec.data(), rout.data(), nfields);
         },
         2L * static_cast<long>(nlanes)},
        {"r2c_packed",
         [&] {
           f.forward_batch(packed.data(), nlanes);
           f.inverse_batch(packed.data(), nlanes);
         },
         2L * static_cast<long>(nlanes)}};
    for (const Variant& v : variants) {
      v.run();  // warm-up
      double best = 1e300;
      for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        v.run();
        const auto t1 = std::chrono::steady_clock::now();
        best =
            std::min(best, std::chrono::duration<double>(t1 - t0).count());
      }
      if (isa == Isa::kScalar && std::string(v.name) == "c2c")
        scalar_c2c = best;
      std::printf("%8s %12s %8zu %12.5f %6ld %9.2fx\n",
                  fft::simd::isa_name(isa), v.name, nfields, best, v.ffts,
                  scalar_c2c / best);
      kernel_rows.push_back({"fft_engine", fft::simd::isa_name(isa), v.name,
                             nfields, best, v.ffts});
    }
    fft::simd::clear_forced_isa();
  }
}

// Γ-point gamma_real exchange: real orbitals through the packed pair-FFT
// path vs the complex pipeline on the same 8x8 problem — the FFT count
// halves (gated) and wall-clock follows.
void exchange_gamma_comparison() {
  auto& x = xbench();
  const size_t nb = 8;
  const size_t npw = x.sphere.npw();
  Rng rng(19);
  la::MatC src(npw, nb);
  std::vector<cplx> field(x.wfc.size());
  for (size_t b = 0; b < nb; ++b) {
    for (auto& v : field) v = cplx(rng.uniform() - 0.5, 0.0);
    x.map.to_sphere(field.data(), src.col(b));
  }
  pw::orthonormalize_lowdin(src);
  const std::vector<real_t> d(nb, 0.5);

  std::printf("\nExchange apply: complex vs Γ-point gamma_real pipeline "
              "(real orbitals, 8 sources x 8 targets)\n");
  std::printf("%12s %12s %10s %10s\n", "mode", "seconds", "FFTs", "speedup");
  const int reps = 20;
  double base = 0.0;
  for (const bool gamma : {false, true}) {
    ham::ExchangeOptions opt;
    opt.gamma_real = gamma;
    ham::ExchangeOperator xop(x.map, opt);
    la::MatC out(npw, nb);
    xop.apply_diag(src, d, src, out);  // warm-up
    xop.fft_count = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) xop.apply_diag(src, d, src, out);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count() / reps;
    if (!gamma) base = sec;
    const long ffts = xop.fft_count / reps;
    std::printf("%12s %12.5f %10ld %9.2fx\n",
                gamma ? "gamma_real" : "complex", sec, ffts, base / sec);
    kernel_rows.push_back({"exchange_gamma", "-",
                           gamma ? "gamma_real" : "complex", nb, sec, ffts});
  }
}

void write_kernels_json() {
  const char* path = "BENCH_kernels.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f, "{\n  \"kernels\": [\n");
    for (size_t i = 0; i < kernel_rows.size(); ++i) {
      const KernelRow& r = kernel_rows[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"isa\": \"%s\", \"variant\": "
                   "\"%s\", \"fields\": %zu, \"seconds\": %.6e, "
                   "\"ffts\": %ld}%s\n",
                   r.name.c_str(), r.isa.c_str(), r.variant.c_str(),
                   r.fields, r.seconds, r.ffts,
                   i + 1 < kernel_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("(engine/gamma rows written to %s)\n", path);
  }
}

}  // namespace

int main(int argc, char** argv) {
#ifdef PTIM_HAVE_BENCHMARK
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
#else
  (void)argc;
  (void)argv;
#endif
  exchange_batch_comparison();
  exchange_precision_comparison();
  exchange_isdf_comparison();
  fft_engine_comparison();
  exchange_gamma_comparison();
  write_kernels_json();
  return 0;
}
