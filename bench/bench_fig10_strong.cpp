// Fig. 10 reproduction: strong scaling of the optimized PT-IM code.
//  (a) 768-atom Si on the ARM platform, 15 -> 480 nodes
//  (b) 1536-atom Si on the GPU platform, 12 -> 192 nodes
// Published endpoints: parallel efficiency 36.8% (ARM, 32x nodes) and
// 22.9% (GPU, 16x nodes).

#include <cstdio>

#include "bench_common.hpp"
#include "netsim/experiments.hpp"

using namespace ptim;

namespace {

void run(const netsim::Platform& plat, size_t natoms,
         const std::vector<size_t>& nodes, double paper_endpoint_eff) {
  std::printf("\n%zu-atom silicon — %s (Async variant)\n", natoms,
              plat.name.c_str());
  std::printf("%8s %14s %12s %12s %14s\n", "nodes", "t/step (s)", "speedup",
              "ideal", "parallel eff");
  const auto rows = netsim::fig10_strong(plat, natoms, nodes);
  for (const auto& r : rows)
    std::printf("%8zu %14.2f %11.2fx %11.2fx %13.1f%%\n", r.nodes,
                r.step_seconds, r.speedup,
                static_cast<double>(r.nodes) / static_cast<double>(nodes[0]),
                100.0 * r.parallel_efficiency);
  std::printf("endpoint parallel efficiency: model %.1f%% vs paper %.1f%%\n",
              100.0 * rows.back().parallel_efficiency,
              100.0 * paper_endpoint_eff);
}

}  // namespace

int main() {
  bench::header("Fig. 10 — strong scaling (wall-clock per 50-as step)");
  run(netsim::Platform::fugaku_arm(), 768, {15, 30, 60, 120, 240, 480},
      0.368);
  run(netsim::Platform::gpu_a100(), 1536, {12, 24, 48, 96, 192}, 0.229);

  // The communication growth the paper reports alongside Fig. 10
  // (Sec. VIII-B): Sendrecv and Allreduce times at the endpoints.
  const auto p = netsim::Platform::fugaku_arm();
  const auto sys = netsim::SystemSize::silicon(768);
  const auto lo = netsim::predict_step(p, sys, 15, netsim::Variant::kRing);
  const auto hi = netsim::predict_step(p, sys, 480, netsim::Variant::kRing);
  std::printf("\nARM Sendrecv: %.2f s @15 nodes -> %.2f s @480 nodes "
              "(paper: 4.7 -> 7.1)\n",
              lo.comm.sendrecv, hi.comm.sendrecv);
  std::printf("ARM Allreduce: %.2f s -> %.2f s (paper: 2.6 -> 3.7)\n",
              lo.comm.allreduce, hi.comm.allreduce);
  return 0;
}
