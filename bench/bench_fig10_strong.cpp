// Fig. 10 reproduction: strong scaling of the optimized PT-IM code.
//  (a) 768-atom Si on the ARM platform, 15 -> 480 nodes
//  (b) 1536-atom Si on the GPU platform, 12 -> 192 nodes
// Published endpoints: parallel efficiency 36.8% (ARM, 32x nodes) and
// 22.9% (GPU, 16x nodes).

#include <cstdio>
#include <utility>

#include "bench_common.hpp"
#include "netsim/experiments.hpp"

using namespace ptim;

namespace {

void run(const netsim::Platform& plat, size_t natoms,
         const std::vector<size_t>& nodes, double paper_endpoint_eff,
         bench::BenchJson& json) {
  std::printf("\n%zu-atom silicon — %s (Async variant)\n", natoms,
              plat.name.c_str());
  std::printf("%8s %14s %12s %12s %14s\n", "nodes", "t/step (s)", "speedup",
              "ideal", "parallel eff");
  const auto rows = netsim::fig10_strong(plat, natoms, nodes);
  for (const auto& r : rows) {
    std::printf("%8zu %14.2f %11.2fx %11.2fx %13.1f%%\n", r.nodes,
                r.step_seconds, r.speedup,
                static_cast<double>(r.nodes) / static_cast<double>(nodes[0]),
                100.0 * r.parallel_efficiency);
    char cfg[96];
    std::snprintf(cfg, sizeof(cfg), "%s natoms=%zu nodes=%zu",
                  plat.name.c_str(), natoms, r.nodes);
    json.add("model_step", cfg, r.step_seconds);
  }
  std::printf("endpoint parallel efficiency: model %.1f%% vs paper %.1f%%\n",
              100.0 * rows.back().parallel_efficiency,
              100.0 * paper_endpoint_eff);
}

}  // namespace

int main() {
  bench::header("Fig. 10 — strong scaling (wall-clock per 50-as step)");
  bench::BenchJson json("fig10_strong");
  run(netsim::Platform::fugaku_arm(), 768, {15, 30, 60, 120, 240, 480},
      0.368, json);
  run(netsim::Platform::gpu_a100(), 1536, {12, 24, 48, 96, 192}, 0.229, json);

  // The communication growth the paper reports alongside Fig. 10
  // (Sec. VIII-B): Sendrecv and Allreduce times at the endpoints.
  const auto p = netsim::Platform::fugaku_arm();
  const auto sys = netsim::SystemSize::silicon(768);
  const auto lo = netsim::predict_step(p, sys, 15, netsim::Variant::kRing);
  const auto hi = netsim::predict_step(p, sys, 480, netsim::Variant::kRing);
  std::printf("\nARM Sendrecv: %.2f s @15 nodes -> %.2f s @480 nodes "
              "(paper: 4.7 -> 7.1)\n",
              lo.comm.sendrecv, hi.comm.sendrecv);
  std::printf("ARM Allreduce: %.2f s -> %.2f s (paper: 2.6 -> 3.7)\n",
              lo.comm.allreduce, hi.comm.allreduce);

  // Measured strong-scaling analogue on thread ranks: the same exchange
  // application at 1, 2 and 4 total ranks, sweeping the pb x pg layouts at
  // each total — the 2-D decomposition opens rank counts beyond the band
  // count and trades ring bytes for pencil-transpose Alltoallv bytes.
  bench::MiniSystem msys = bench::MiniSystem::make(8000.0);
  pw::SphereGridMap map{*msys.sphere, *msys.wfc_grid};
  std::printf("\n[measured] pb x pg strong sweep, async ring, one exchange "
              "application\n");
  std::printf("%-8s %12s %12s %12s %12s %12s\n", "pb x pg", "apply ms",
              "slabFFT ms", "ring B", "a2a B", "allred B");
  for (const auto& [pb, pg] :
       {std::pair{1, 1}, std::pair{2, 1}, std::pair{1, 2}, std::pair{4, 1},
        std::pair{2, 2}, std::pair{1, 4}}) {
    const bench::GridSweepRow r = bench::run_grid_exchange(
        msys, map, pb, pg, dist::ExchangePattern::kAsyncRing);
    std::printf("%dx%-6d %12.3f %12.3f %12lld %12lld %12lld\n", r.pb, r.pg,
                r.apply_seconds * 1e3, r.slab_fft_seconds * 1e3, r.ring_bytes,
                r.alltoallv_bytes, r.allreduce_bytes);
    char cfg[96];
    std::snprintf(cfg, sizeof(cfg), "pb=%d pg=%d pattern=async", r.pb, r.pg);
    json.add("measured_apply", cfg, r.apply_seconds,
             r.ring_bytes + r.alltoallv_bytes + r.allreduce_bytes);
    json.add("measured_slab_fft", cfg, r.slab_fft_seconds, r.alltoallv_bytes);
  }
  json.write();
  return 0;
}
