// Ablation studies for the design choices DESIGN.md calls out (measured on
// the real solver):
//   A. Anderson mixing history (paper uses 20) vs plain damped iteration —
//      SCF iterations per PT-IM step.
//   B. ACE outer tolerance vs exact-exchange application count — the knob
//      behind the paper's 25 -> 5 reduction.
//   C. Time-step convergence of PT-IM: the implicit midpoint rule is
//      second order, which is what licenses the 50-as steps.

#include <cmath>

#include "bench_common.hpp"

using namespace ptim;
using bench::MiniSystem;

int main() {
  bench::header("Ablations — Anderson depth, ACE tolerance, dt order");

  MiniSystem sys = MiniSystem::make(8000.0);

  std::printf("\nA. Anderson history vs PT-IM fixed-point iterations "
              "(dt = 2 au, tol 1e-8)\n");
  std::printf("%12s %14s %12s\n", "history", "SCF iters", "converged");
  for (const size_t hist : {size_t(1), size_t(3), size_t(5), size_t(10),
                            size_t(20)}) {
    td::TdState s = sys.initial();
    td::PtImOptions opt;
    opt.dt = 2.0;
    opt.tol = 1e-8;
    opt.variant = td::PtImVariant::kDiag;
    opt.anderson_history = hist;
    td::PtImPropagator prop(*sys.ham, opt, nullptr);
    const auto stats = prop.step(s);
    std::printf("%12zu %14d %12s\n", hist, stats.scf_iterations,
                stats.converged ? "yes" : "no");
  }
  std::printf("(paper: maximum Anderson dimension 20)\n");

  std::printf("\nB. ACE outer tolerance vs exact-exchange applications\n");
  std::printf("%12s %10s %10s %14s\n", "tol_fock", "outer", "Vx count",
              "SCF iters");
  for (const real_t tol : {1e-4, 1e-6, 1e-8, 1e-10}) {
    td::TdState s = sys.initial();
    td::PtImOptions opt;
    opt.dt = 2.0;
    opt.tol = 1e-8;
    opt.variant = td::PtImVariant::kAce;
    opt.tol_fock = tol;
    opt.max_outer = 12;
    td::PtImPropagator prop(*sys.ham, opt, nullptr);
    const auto stats = prop.step(s);
    std::printf("%12.0e %10d %10d %14d\n", tol, stats.outer_iterations,
                stats.exchange_applications, stats.scf_iterations);
  }
  std::printf("(paper: tol 1e-6 -> ~5 Vx per step vs 25 without ACE)\n");

  std::printf("\nC. PT-IM time-step convergence (field-free, vs dt/4 "
              "reference)\n");
  std::printf("%8s %16s %10s\n", "dt (au)", "|rho - ref|_2", "order");
  const real_t t_final = 4.0;
  auto run_to = [&](real_t dt) {
    td::TdState s = sys.initial();
    td::PtImOptions opt;
    opt.dt = dt;
    opt.tol = 1e-11;
    opt.variant = td::PtImVariant::kDiag;
    td::PtImPropagator prop(*sys.ham, opt, nullptr);
    const int n = static_cast<int>(std::lround(t_final / dt));
    for (int i = 0; i < n; ++i) prop.step(s);
    return sys.density(s);
  };
  const auto ref = run_to(0.25);
  real_t prev_err = 0.0;
  for (const real_t dt : {2.0, 1.0, 0.5}) {
    const auto rho = run_to(dt);
    real_t err = 0.0;
    for (size_t i = 0; i < rho.size(); ++i)
      err += (rho[i] - ref[i]) * (rho[i] - ref[i]);
    err = std::sqrt(err);
    std::printf("%8.2f %16.4e %10s\n", dt, err,
                prev_err > 0.0
                    ? std::to_string(std::log2(prev_err / err)).c_str()
                    : "-");
    prev_err = err;
  }
  std::printf("(implicit midpoint is order 2: halving dt should shrink the "
              "error ~4x)\n");
  return 0;
}
