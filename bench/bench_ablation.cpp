// Ablation studies for the design choices DESIGN.md calls out (measured on
// the real solver):
//   A. Anderson mixing history (paper uses 20) vs plain damped iteration —
//      SCF iterations per PT-IM step.
//   B. ACE outer tolerance vs exact-exchange application count — the knob
//      behind the paper's 25 -> 5 reduction.
//   C. Time-step convergence of PT-IM: the implicit midpoint rule is
//      second order, which is what licenses the 50-as steps.
//   D. Exchange FFT batch size: per-pair (batch_size = 1) vs blocks of B
//      pair densities through the batched FFT engine — the PR's hot-path
//      optimization, measured on the real ground-state orbitals.

#include <chrono>
#include <cmath>

#include "bench_common.hpp"

using namespace ptim;
using bench::MiniSystem;

int main() {
  bench::header("Ablations — Anderson depth, ACE tolerance, dt order");

  MiniSystem sys = MiniSystem::make(8000.0);

  std::printf("\nA. Anderson history vs PT-IM fixed-point iterations "
              "(dt = 2 au, tol 1e-8)\n");
  std::printf("%12s %14s %12s\n", "history", "SCF iters", "converged");
  for (const size_t hist : {size_t(1), size_t(3), size_t(5), size_t(10),
                            size_t(20)}) {
    td::TdState s = sys.initial();
    td::PtImOptions opt;
    opt.dt = 2.0;
    opt.tol = 1e-8;
    opt.variant = td::PtImVariant::kDiag;
    opt.anderson_history = hist;
    td::PtImPropagator prop(*sys.ham, opt, nullptr);
    const auto stats = prop.step(s);
    std::printf("%12zu %14d %12s\n", hist, stats.scf_iterations,
                stats.converged ? "yes" : "no");
  }
  std::printf("(paper: maximum Anderson dimension 20)\n");

  std::printf("\nB. ACE outer tolerance vs exact-exchange applications\n");
  std::printf("%12s %10s %10s %14s\n", "tol_fock", "outer", "Vx count",
              "SCF iters");
  for (const real_t tol : {1e-4, 1e-6, 1e-8, 1e-10}) {
    td::TdState s = sys.initial();
    td::PtImOptions opt;
    opt.dt = 2.0;
    opt.tol = 1e-8;
    opt.variant = td::PtImVariant::kAce;
    opt.tol_fock = tol;
    opt.max_outer = 12;
    td::PtImPropagator prop(*sys.ham, opt, nullptr);
    const auto stats = prop.step(s);
    std::printf("%12.0e %10d %10d %14d\n", tol, stats.outer_iterations,
                stats.exchange_applications, stats.scf_iterations);
  }
  std::printf("(paper: tol 1e-6 -> ~5 Vx per step vs 25 without ACE)\n");

  std::printf("\nC. PT-IM time-step convergence (field-free, vs dt/4 "
              "reference)\n");
  std::printf("%8s %16s %10s\n", "dt (au)", "|rho - ref|_2", "order");
  const real_t t_final = 4.0;
  auto run_to = [&](real_t dt) {
    td::TdState s = sys.initial();
    td::PtImOptions opt;
    opt.dt = dt;
    opt.tol = 1e-11;
    opt.variant = td::PtImVariant::kDiag;
    td::PtImPropagator prop(*sys.ham, opt, nullptr);
    const int n = static_cast<int>(std::lround(t_final / dt));
    for (int i = 0; i < n; ++i) prop.step(s);
    return sys.density(s);
  };
  const auto ref = run_to(0.25);
  real_t prev_err = 0.0;
  for (const real_t dt : {2.0, 1.0, 0.5}) {
    const auto rho = run_to(dt);
    real_t err = 0.0;
    for (size_t i = 0; i < rho.size(); ++i)
      err += (rho[i] - ref[i]) * (rho[i] - ref[i]);
    err = std::sqrt(err);
    std::printf("%8.2f %16.4e %10s\n", dt, err,
                prev_err > 0.0
                    ? std::to_string(std::log2(prev_err / err)).c_str()
                    : "-");
    prev_err = err;
  }
  std::printf("(implicit midpoint is order 2: halving dt should shrink the "
              "error ~4x)\n");

  std::printf("\nD. Exchange FFT batch size (one Vx apply on the converged "
              "ground state)\n");
  std::printf("%10s %12s %10s %10s %16s\n", "batch", "seconds", "FFTs",
              "speedup", "max|d| vs B=1");
  bench::BenchJson json("ablation");
  {
    pw::SphereGridMap map(*sys.sphere, *sys.wfc_grid);
    const la::MatC& phi = sys.ground.phi;
    const std::vector<real_t>& occ = sys.ground.occ;
    la::MatC ref;
    double t_ref = 0.0;
    for (const size_t bs : {size_t(1), size_t(2), size_t(4), size_t(8),
                            size_t(16)}) {
      ham::ExchangeOptions opt;
      opt.batch_size = bs;
      ham::ExchangeOperator xop(map, opt);
      la::MatC out(phi.rows(), phi.cols());
      xop.apply_diag(phi, occ, phi, out);  // warm-up
      xop.fft_count = 0;
      const auto t0 = std::chrono::steady_clock::now();
      xop.apply_diag(phi, occ, phi, out);
      const auto t1 = std::chrono::steady_clock::now();
      const double sec = std::chrono::duration<double>(t1 - t0).count();
      real_t max_abs = 0.0;
      if (bs == 1) {
        ref = out;
        t_ref = sec;
      } else {
        for (size_t i = 0; i < out.size(); ++i)
          max_abs = std::max(max_abs,
                             std::abs(out.data()[i] - ref.data()[i]));
      }
      std::printf("%10zu %12.5f %10ld %9.2fx %16.2e\n", bs, sec,
                  static_cast<long>(xop.fft_count), t_ref / sec, max_abs);
      char cfg[64];
      std::snprintf(cfg, sizeof(cfg), "batch_size=%zu ffts=%ld", bs,
                    static_cast<long>(xop.fft_count));
      json.add("exchange_apply", cfg, sec);
    }
  }
  json.write();
  std::printf("(batch_size is ExchangeOptions::batch_size; 1 is the "
              "paper-baseline per-pair path)\n");
  return 0;
}
