// Ensemble trajectory throughput — the serving-layer measurement behind
// core::EnsembleDriver: N delta-kick trajectories over ONE prepared ground
// state, propagated one-at-a-time (the pre-ensemble baseline: every
// trajectory pays its own exchange applications) versus in lockstep
// batches whose ACE builds run through ExchangeOperator::apply_diag_packed
// (all in-flight trajectories' pair-density blocks share batched FFTs).
//
// The batched path is regression-pinned bitwise identical to the baseline
// (tests/test_ensemble.cpp); this bench reports what the packing buys in
// trajectories/hour. Writes BENCH_throughput.json.

// A second section times the crash-safe campaign path (core::
// EnsembleCampaign): the same jobs with atomic auto-checkpointing every 2
// steps, uninterrupted versus killed mid-flight and resumed from disk —
// the price of durability and of a restart, in the same traj/hour units.

#include <unistd.h>

#include <cstring>

#include "bench_common.hpp"
#include "core/campaign.hpp"
#include "core/ensemble.hpp"
#include "core/simulation.hpp"
#include "io/job_queue.hpp"

using namespace ptim;

namespace {

void remove_tree(const std::string& path) {
  for (const std::string& name : io::list_dir(path))
    remove_tree(path + "/" + name);
  ::rmdir(path.c_str());
  std::remove(path.c_str());
}

std::vector<core::EnsembleJob> make_jobs(int n) {
  std::vector<core::EnsembleJob> jobs;
  for (int i = 0; i < n; ++i) {
    core::EnsembleJob j;
    j.name = "kick" + std::to_string(i);
    j.kick = {1e-3 * static_cast<real_t>(i + 1), 0.0, 0.0};
    jobs.push_back(std::move(j));
  }
  return jobs;
}

bool states_identical(const td::TdState& a, const td::TdState& b) {
  return a.phi.size() == b.phi.size() && a.sigma.size() == b.sigma.size() &&
         std::memcmp(a.phi.data(), b.phi.data(),
                     a.phi.size() * sizeof(cplx)) == 0 &&
         std::memcmp(a.sigma.data(), b.sigma.data(),
                     a.sigma.size() * sizeof(cplx)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 6;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 4;

  bench::header("ensemble trajectory throughput (PT-IM-ACE, hybrid)");
  std::printf("%d trajectories x %d steps over one shared ground state\n\n",
              n, steps);

  core::SystemSpec spec;
  spec.ecut = 2.0;
  spec.temperature_k = 8000.0;
  spec.scf.tol_rho = 1e-6;
  core::Simulation sim(spec);
  sim.prepare_ground_state();

  core::RunConfig cfg;
  cfg.steps = steps;
  cfg.dt = 1.0;
  cfg.variant = td::PtImVariant::kAce;

  bench::BenchJson json("throughput");
  const std::string shape =
      "n=" + std::to_string(n) + " steps=" + std::to_string(steps);

  std::printf("%10s %12s %16s %10s\n", "width", "seconds", "traj/hour",
              "speedup");
  bench::rule();
  double base_secs = 0.0;
  std::vector<core::EnsembleJobResult> baseline;
  for (const size_t width : {size_t{1}, size_t{2}, size_t{0}}) {
    core::EnsembleDriver ens(sim, cfg);
    for (auto& j : make_jobs(n)) ens.submit(std::move(j));
    Timer t;
    auto results = ens.run_all(width);
    const double secs = t.seconds();
    if (width == 1) {
      base_secs = secs;
      baseline = std::move(results);
    } else {
      // The whole point of the packing is that it costs no accuracy at
      // all: per-trajectory results must be bitwise the baseline's.
      for (size_t i = 0; i < baseline.size(); ++i)
        if (!states_identical(baseline[i].final_state,
                              results[i].final_state)) {
          std::printf("FAIL: width=%zu diverged from baseline on job %zu\n",
                      width, i);
          return 1;
        }
    }
    const std::string label =
        width == 0 ? "all" : std::to_string(width);
    std::printf("%10s %12.3f %16.1f %9.2fx\n", label.c_str(), secs,
                n / secs * 3600.0, base_secs / secs);
    json.add("ensemble", shape + " width=" + label, secs);
  }
  std::printf("\n(batched widths verified bitwise identical to width=1)\n");

  // --- campaign durability overhead ---------------------------------------
  core::RunConfig ccfg = cfg;
  ccfg.checkpoint_every = 2;
  const auto submit_all = [&](core::EnsembleCampaign& camp) {
    for (auto& j : make_jobs(n)) {
      core::CampaignJob cj;
      cj.name = j.name;
      cj.kick = j.kick;
      camp.submit(cj);
    }
  };

  std::printf("\ncampaign (auto-checkpoint every 2 steps)\n");
  std::printf("%16s %12s %10s\n", "scenario", "seconds", "vs width=1");
  bench::rule();

  // Uninterrupted: what the checkpointing itself costs.
  const std::string dir_ref = "bench_campaign_ref";
  remove_tree(dir_ref);
  double campaign_secs = 0.0;
  {
    core::CampaignOptions opt;
    opt.dir = dir_ref;
    core::EnsembleCampaign camp(sim, ccfg, opt);
    submit_all(camp);
    Timer t;
    camp.run();
    campaign_secs = t.seconds();
  }
  std::printf("%16s %12.3f %9.2fx\n", "uninterrupted", campaign_secs,
              campaign_secs / base_secs);
  json.add("campaign", shape + " ckpt_every=2", campaign_secs);

  // Killed after the first job's midpoint checkpoint, then resumed in a
  // fresh campaign over the same directory: the restart overhead a real
  // crash pays (re-scan, re-validate, replay from the last snapshot).
  const std::string dir_kr = "bench_campaign_resume";
  remove_tree(dir_kr);
  double resume_secs = 0.0;
  {
    core::CampaignOptions opt;
    opt.dir = dir_kr;
    const auto kill_at = static_cast<uint64_t>(steps / 2);
    opt.fault_hook = [kill_at](int id, uint64_t done) {
      if (id == 0 && done == kill_at)
        throw core::CampaignKill("bench kill");
    };
    core::EnsembleCampaign camp(sim, ccfg, opt);
    submit_all(camp);
    Timer t;
    try {
      camp.run();
    } catch (const core::CampaignKill&) {
    }
    core::CampaignOptions resume_opt;
    resume_opt.dir = dir_kr;
    core::EnsembleCampaign resumed(sim, ccfg, resume_opt);
    resumed.run();
    resume_secs = t.seconds();
  }
  std::printf("%16s %12.3f %9.2fx\n", "kill+resume", resume_secs,
              resume_secs / base_secs);
  json.add("campaign", shape + " kill+resume", resume_secs);
  remove_tree(dir_ref);
  remove_tree(dir_kr);

  json.write();
  return 0;
}
