#!/usr/bin/env python3
"""Validate an obs Chrome trace-event JSON file.

Usage:
    trace_validate.py TRACE.json [--require-overlap] [--require-ranks N]

Checks, in order:

  1. The file is well-formed JSON with a `traceEvents` list holding only
     "X" (complete, with ts/dur) and "M" (metadata) events.
  2. Per lane — one lane is one (pid, tid) pair, i.e. one rank's thread or
     stream — the duration events are properly NESTED: sorted by begin
     time, every event either starts after the previous one ends or lies
     entirely inside it. RAII spans recorded on one thread can never
     partially overlap, so a violation means clock or buffer corruption.
  3. The comm/compute overlap fraction is computable: for every pid
     (rank), intersect the union of `cat == "comm"` intervals with the
     union of `cat == "compute"` intervals across that rank's lanes.
     overlap_fraction = intersected_time / min(comm_time, compute_time).
     Under the stream-pipelined ring (async backend + a wire model that
     makes transfers take measurable time) this is the machine-checkable
     form of the paper's Fig. 5 overlap claim.

Exit status 0 when every check passes (and, with --require-overlap, the
whole-trace overlap fraction is > 0; with --require-ranks N, at least N
distinct rank pids carry duration events).
"""

import argparse
import json
import sys
from collections import defaultdict


def load_events(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise ValueError("no traceEvents list")
    events = doc["traceEvents"]
    for ev in events:
        if not isinstance(ev, dict):
            raise ValueError("non-object trace event")
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            raise ValueError(f"unexpected event phase {ph!r}")
        if ph == "X":
            for key in ("pid", "tid", "ts", "dur", "name", "cat"):
                if key not in ev:
                    raise ValueError(f"X event missing {key!r}: {ev}")
            if ev["dur"] < 0:
                raise ValueError(f"negative duration: {ev}")
    return events


def check_nesting(events):
    """Verify per-lane proper nesting; return the number of lanes."""
    lanes = defaultdict(list)
    for ev in events:
        if ev["ph"] == "X":
            lanes[(ev["pid"], ev["tid"])].append(ev)
    for (pid, tid), evs in lanes.items():
        evs.sort(key=lambda e: (e["ts"], -e["dur"]))
        # Stack of open intervals: each new event must begin after the top
        # ends (sibling, pop) or end within it (child, push).
        stack = []
        for ev in evs:
            t0, t1 = ev["ts"], ev["ts"] + ev["dur"]
            while stack and t0 >= stack[-1][1]:
                stack.pop()
            if stack and t1 > stack[-1][1] + 1e-9:
                raise ValueError(
                    f"lane pid={pid} tid={tid}: event {ev['name']!r} "
                    f"[{t0}, {t1}] partially overlaps an enclosing span "
                    f"ending at {stack[-1][1]}"
                )
            stack.append((t0, t1))
    return len(lanes)


def union_intervals(intervals):
    """Merge [t0, t1) intervals; return (merged_list, total_length)."""
    merged = []
    total = 0.0
    for t0, t1 in sorted(intervals):
        if merged and t0 <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], t1)
        else:
            merged.append([t0, t1])
    for t0, t1 in merged:
        total += t1 - t0
    return merged, total


def intersect_length(a, b):
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return total


def overlap_by_rank(events):
    """pid -> (comm_seconds, compute_seconds, overlap_fraction)."""
    comm = defaultdict(list)
    compute = defaultdict(list)
    for ev in events:
        if ev["ph"] != "X":
            continue
        iv = (ev["ts"], ev["ts"] + ev["dur"])
        if ev["cat"] == "comm":
            comm[ev["pid"]].append(iv)
        elif ev["cat"] == "compute":
            compute[ev["pid"]].append(iv)
    out = {}
    for pid in sorted(set(comm) | set(compute)):
        cm, cm_len = union_intervals(comm.get(pid, []))
        cp, cp_len = union_intervals(compute.get(pid, []))
        denom = min(cm_len, cp_len)
        frac = intersect_length(cm, cp) / denom if denom > 0 else 0.0
        out[pid] = (cm_len / 1e6, cp_len / 1e6, frac)
    return out


def main(argv=None):
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    ap.add_argument("trace")
    ap.add_argument(
        "--require-overlap",
        action="store_true",
        help="fail unless the whole-trace comm/compute overlap fraction > 0",
    )
    ap.add_argument(
        "--require-ranks",
        type=int,
        default=0,
        help="fail unless at least N distinct rank pids carry events",
    )
    args = ap.parse_args(argv)

    try:
        events = load_events(args.trace)
        nlanes = check_nesting(events)
    except ValueError as e:
        print(f"trace_validate: {args.trace}: {e}", file=sys.stderr)
        return 1

    ndur = sum(1 for ev in events if ev["ph"] == "X")
    pids = sorted({ev["pid"] for ev in events if ev["ph"] == "X"})
    print(
        f"trace_validate: {args.trace}: {ndur} duration events, "
        f"{nlanes} lanes, {len(pids)} rank pid(s) — well-formed, nested"
    )

    per_rank = overlap_by_rank(events)
    total_frac = 0.0
    nfrac = 0
    for pid, (cm_s, cp_s, frac) in per_rank.items():
        print(
            f"  rank pid {pid}: comm {cm_s:.6f}s, compute {cp_s:.6f}s, "
            f"overlap fraction {frac:.3f}"
        )
        if cm_s > 0 and cp_s > 0:
            total_frac += frac
            nfrac += 1
    mean_frac = total_frac / nfrac if nfrac else 0.0
    print(f"trace_validate: mean overlap fraction {mean_frac:.3f}")

    if args.require_ranks and len(pids) < args.require_ranks:
        print(
            f"trace_validate: expected >= {args.require_ranks} rank pids, "
            f"got {len(pids)}",
            file=sys.stderr,
        )
        return 1
    if args.require_overlap and not mean_frac > 0.0:
        print(
            "trace_validate: comm/compute overlap fraction is zero "
            "(expected overlapped ring under async backend + wire model)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
