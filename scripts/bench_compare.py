#!/usr/bin/env python3
"""Diff two sets of BENCH_*.json files and fail on metric regressions.

Usage:
    bench_compare.py BASELINE_DIR CANDIDATE_DIR [--threshold 0.15]
                     [--atol 1e-9] [--include-timing] [--glob 'BENCH_*.json']
                     [--jsonl-glob 'METRICS_*.jsonl']

Every JSON file matching --glob in BASELINE_DIR must exist in CANDIDATE_DIR
(a missing candidate file is itself a failure: a bench silently dropping out
of the artifact set must not pass CI). Two schemas are understood:

  1. the bench_common writer: {"bench": <name>, "rows": [{...}, ...]}
  2. custom dumps:            {"<key>": [{...}, ...], "<key2>": [...], ...}

EVERY list-of-dicts array in a document is gated (custom dumps may carry
several — e.g. BENCH_table1_comm.json's "model", "overlap" and
"gamma_ring" sections); arrays are matched between baseline and candidate
by their key, and a baseline array missing from the candidate document is
a failure.

Files matching --jsonl-glob are obs StepReport streams (one JSON object per
line, appended per committed PT-IM step). Rows are keyed by
(job_id, rank, step) with the LAST occurrence winning — a resumed campaign
rewinds to its checkpoint and legitimately re-appends the replayed steps.
Only the deterministic counters (FFT counts, comm bytes, iteration counts)
are gated; wall-clock and allocator columns are machine noise by design.

Rows are matched between baseline and candidate by their identity fields
(all string-valued fields plus the well-known axis keys such as bands,
batch_size, rank_factor, precision). The remaining numeric fields are
metrics. Wall-clock timing (any "*seconds" or "speedup*" field) is noisy on
shared CI runners and is ignored unless --include-timing is given; the gate
is meant for the deterministic counters and accuracy measures (ffts, bytes,
max_abs_denergy, dipole_drift, ...), which are reproducible run to run.

A metric regresses when the candidate exceeds
    max(baseline * (1 + threshold), baseline + atol)
i.e. higher is worse for everything gated. The atol term keeps near-zero
accuracy metrics (1e-12-level energy drifts) from tripping the relative gate
on harmless last-digit changes; anything that grows past atol in absolute
terms must still clear the relative bar. Exit status is nonzero iff at
least one metric regressed or a candidate file is missing.
"""

import argparse
import glob
import json
import os
import sys

# Fields that identify a row rather than measure it. String-valued fields
# are always identity; these names are identity even when numeric.
IDENTITY_KEYS = {
    "bands",
    "batch_size",
    "rank_factor",
    "precision",
    "name",
    "config",
    "mode",
    "ranks",
    "steps",
    "nbatch",
    "fields",
}

# Noisy wall-clock metrics, skipped unless --include-timing: "seconds",
# "step_seconds", "speedup_vs_serialized", ...
TIMING_PREFIXES = ("speedup",)
TIMING_SUFFIXES = ("seconds",)

# StepReport JSONL rows: identity, and the only metrics stable enough to
# gate. seconds/comm_seconds/isdf_fit_seconds are wall-clock; alloc_delta
# reads a process-global counter shared by concurrently stepping ranks;
# residual is converged-to-tolerance float noise.
METRICS_IDENTITY = ("job_id", "rank", "step")
METRICS_GATED = {
    "ffts",
    "ring_bytes",
    "alltoallv_bytes",
    "allreduce_bytes",
    "scf_iterations",
    "outer_iterations",
    "exchange_applications",
}


def find_row_lists(doc):
    """Return {list_key: rows} for every gated array in the document."""
    if isinstance(doc.get("rows"), list):
        return {"rows": doc["rows"]}
    return {
        key: val
        for key, val in doc.items()
        if isinstance(val, list) and all(isinstance(r, dict) for r in val)
    }


def row_identity(row):
    ident = []
    for key in sorted(row):
        val = row[key]
        if isinstance(val, str) or key in IDENTITY_KEYS:
            ident.append((key, val))
    return tuple(ident)


def is_timing(key):
    return key.endswith(TIMING_SUFFIXES) or key.startswith(TIMING_PREFIXES)


def compare_rows(base_row, cand_row, threshold, atol, include_timing):
    """Yield (metric, baseline, candidate, regressed) per gated metric."""
    for key in sorted(base_row):
        base = base_row[key]
        if isinstance(base, str) or key in IDENTITY_KEYS:
            continue
        if not isinstance(base, (int, float)):
            continue
        if is_timing(key) and not include_timing:
            continue
        cand = cand_row.get(key)
        if not isinstance(cand, (int, float)):
            yield key, base, cand, True
            continue
        if base == 0 and cand == 0:
            continue
        limit = max(base * (1.0 + threshold), base + atol)
        yield key, base, cand, cand > limit


def compare_file(base_path, cand_path, threshold, atol, include_timing):
    """Return (n_checked, failures) where failures is a list of messages."""
    with open(base_path) as f:
        base_doc = json.load(f)
    with open(cand_path) as f:
        cand_doc = json.load(f)
    base_lists = find_row_lists(base_doc)
    cand_lists = find_row_lists(cand_doc)

    fname = os.path.basename(base_path)
    checked = 0
    failures = []
    for list_key, base_rows in base_lists.items():
        cand_rows = cand_lists.get(list_key)
        if cand_rows is None:
            failures.append(
                f"{fname}: array {list_key!r} missing from candidate"
            )
            continue
        cand_by_id = {row_identity(r): r for r in cand_rows}
        for base_row in base_rows:
            ident = row_identity(base_row)
            label = ", ".join(f"{k}={v}" for k, v in ident) or "<row>"
            cand_row = cand_by_id.get(ident)
            if cand_row is None:
                failures.append(
                    f"{fname}: {list_key} row [{label}] missing from candidate"
                )
                continue
            for key, base, cand, bad in compare_rows(
                base_row, cand_row, threshold, atol, include_timing
            ):
                checked += 1
                if bad:
                    failures.append(
                        f"{fname}: {list_key} [{label}] {key} regressed: "
                        f"baseline {base!r} -> candidate {cand!r} "
                        f"(threshold {threshold:.0%}, atol {atol:g})"
                    )
    return checked, failures


def load_jsonl_rows(path):
    """Parse a StepReport stream; dedupe by (job_id, rank, step), last wins."""
    by_key = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            by_key[tuple(row.get(k) for k in METRICS_IDENTITY)] = row
    return [by_key[k] for k in sorted(by_key)]


def compare_jsonl_file(base_path, cand_path, threshold, atol):
    """Gate the deterministic StepReport columns row by row."""
    base_rows = load_jsonl_rows(base_path)
    cand_by_key = {
        tuple(r.get(k) for k in METRICS_IDENTITY): r
        for r in load_jsonl_rows(cand_path)
    }

    fname = os.path.basename(base_path)
    checked = 0
    failures = []
    for base_row in base_rows:
        key = tuple(base_row.get(k) for k in METRICS_IDENTITY)
        label = ", ".join(f"{k}={v}" for k, v in zip(METRICS_IDENTITY, key))
        cand_row = cand_by_key.get(key)
        if cand_row is None:
            failures.append(f"{fname}: row [{label}] missing from candidate")
            continue
        for metric in sorted(METRICS_GATED):
            base = base_row.get(metric)
            if not isinstance(base, (int, float)):
                continue
            cand = cand_row.get(metric)
            checked += 1
            if not isinstance(cand, (int, float)):
                failures.append(f"{fname}: [{label}] {metric} missing")
                continue
            if base == 0 and cand == 0:
                continue
            limit = max(base * (1.0 + threshold), base + atol)
            if cand > limit:
                failures.append(
                    f"{fname}: [{label}] {metric} regressed: "
                    f"baseline {base!r} -> candidate {cand!r} "
                    f"(threshold {threshold:.0%}, atol {atol:g})"
                )
    return checked, failures


def main(argv=None):
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    ap.add_argument("baseline_dir")
    ap.add_argument("candidate_dir")
    ap.add_argument("--threshold", type=float, default=0.15)
    ap.add_argument("--atol", type=float, default=1e-9)
    ap.add_argument("--include-timing", action="store_true")
    ap.add_argument("--glob", default="BENCH_*.json")
    ap.add_argument("--jsonl-glob", default="METRICS_*.jsonl")
    args = ap.parse_args(argv)

    base_paths = sorted(glob.glob(os.path.join(args.baseline_dir, args.glob)))
    jsonl_paths = sorted(
        glob.glob(os.path.join(args.baseline_dir, args.jsonl_glob))
    )
    if not base_paths:
        print(
            f"bench_compare: no files matching {args.glob!r} in "
            f"{args.baseline_dir}",
            file=sys.stderr,
        )
        return 1

    total_checked = 0
    all_failures = []
    for base_path in base_paths:
        cand_path = os.path.join(args.candidate_dir, os.path.basename(base_path))
        if not os.path.exists(cand_path):
            all_failures.append(
                f"{os.path.basename(base_path)}: missing from candidate dir"
            )
            continue
        checked, failures = compare_file(
            base_path, cand_path, args.threshold, args.atol, args.include_timing
        )
        total_checked += checked
        all_failures.extend(failures)
        status = "FAIL" if failures else "ok"
        print(
            f"{status:4s} {os.path.basename(base_path)}: "
            f"{checked} metrics checked, {len(failures)} regression(s)"
        )

    for base_path in jsonl_paths:
        cand_path = os.path.join(args.candidate_dir, os.path.basename(base_path))
        if not os.path.exists(cand_path):
            all_failures.append(
                f"{os.path.basename(base_path)}: missing from candidate dir"
            )
            continue
        checked, failures = compare_jsonl_file(
            base_path, cand_path, args.threshold, args.atol
        )
        total_checked += checked
        all_failures.extend(failures)
        status = "FAIL" if failures else "ok"
        print(
            f"{status:4s} {os.path.basename(base_path)}: "
            f"{checked} metrics checked, {len(failures)} regression(s)"
        )

    for msg in all_failures:
        print(f"  {msg}", file=sys.stderr)
    print(
        f"bench_compare: {total_checked} metrics across "
        f"{len(base_paths) + len(jsonl_paths)} file(s), "
        f"{len(all_failures)} failure(s)"
    )
    return 1 if all_failures else 0


if __name__ == "__main__":
    sys.exit(main())
